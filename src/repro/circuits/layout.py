"""Cache-blocking qubit layout (Doi & Horii, QCE 2020).

The QISKit-Aer lineage the paper builds on includes a *cache blocking*
transpiler pass: relabel qubits so the ones gates touch most often sit at
the low index positions - inside the chunk - turning expensive cross-chunk
("Case 2", Fig. 1) updates into chunk-local ones.  Q-GPU inherits the same
chunked layout, so the pass composes with every version.

The pass is a pure relabeling: ``apply_layout`` rewrites gate qubits, and
``permute_statevector`` converts final amplitudes back to the original
labelling, so results are exactly preserved (tested).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.errors import CircuitError


def qubit_gate_frequency(circuit: QuantumCircuit) -> list[int]:
    """How many gates touch each qubit."""
    counts = [0] * circuit.num_qubits
    for gate in circuit:
        for q in gate.qubits:
            counts[q] += 1
    return counts


def cross_chunk_gate_count(circuit: QuantumCircuit, chunk_bits: int) -> int:
    """Gates with at least one qubit above the chunk boundary (Case 2)."""
    return sum(
        1 for gate in circuit if any(q >= chunk_bits for q in gate.qubits)
    )


def cache_blocking_layout(circuit: QuantumCircuit, chunk_bits: int) -> dict[int, int]:
    """Choose a relabeling that minimises cross-chunk gates (greedy).

    Qubits are ranked by how often gates touch them; the busiest
    ``chunk_bits`` qubits move inside the chunk (positions
    ``0..chunk_bits-1``).  Ties keep the original order, making the pass
    deterministic.

    Returns:
        ``mapping[logical] = physical`` over all qubits.
    """
    if not 0 < chunk_bits <= circuit.num_qubits:
        raise CircuitError(f"chunk_bits {chunk_bits} out of range")
    counts = qubit_gate_frequency(circuit)
    ranked = sorted(range(circuit.num_qubits), key=lambda q: (-counts[q], q))
    return {logical: physical for physical, logical in enumerate(ranked)}


def apply_layout(circuit: QuantumCircuit, mapping: dict[int, int]) -> QuantumCircuit:
    """Rewrite every gate's qubits through ``mapping``.

    Raises:
        CircuitError: If ``mapping`` is not a permutation of the register.
    """
    expected = set(range(circuit.num_qubits))
    if set(mapping) != expected or set(mapping.values()) != expected:
        raise CircuitError("layout mapping must be a register permutation")
    out = circuit.with_gates(
        (gate.remapped(mapping) for gate in circuit), suffix="_layout"
    )
    return out


def invert_layout(mapping: dict[int, int]) -> dict[int, int]:
    """The inverse permutation."""
    return {physical: logical for logical, physical in mapping.items()}


def cache_blocking_swaps(
    circuit: QuantumCircuit, chunk_bits: int
) -> tuple[QuantumCircuit, dict[int, int]]:
    """Dynamic cache blocking via inserted SWAPs (Doi & Horii, QCE 2020).

    Instead of exchanging chunks whenever a gate touches a qubit above the
    chunk boundary, move that *qubit* inside the chunk with an explicit
    SWAP and keep it there while it stays hot.  Every original gate then
    executes chunk-locally; only the inserted SWAPs cross the boundary, and
    they amortise over runs of gates on the same qubits.

    The victim position (which in-chunk qubit gets evicted) is chosen
    least-recently-used among positions the current gate does not need.

    Args:
        circuit: Circuit in logical qubit labels.
        chunk_bits: In-chunk positions ``0..chunk_bits-1``.

    Returns:
        ``(physical_circuit, final_mapping)`` where
        ``final_mapping[logical] = physical`` describes where each logical
        qubit ended up; ``permute_statevector(simulate(circuit),
        final_mapping)`` equals ``simulate(physical_circuit)``.
    """
    n = circuit.num_qubits
    if not 0 < chunk_bits <= n:
        raise CircuitError(f"chunk_bits {chunk_bits} out of range")
    layout = {q: q for q in range(n)}          # logical -> physical
    occupant = {q: q for q in range(n)}        # physical -> logical
    last_used = [-1] * chunk_bits              # per in-chunk position
    out = QuantumCircuit(n, name=circuit.name + "_cb")

    for step, gate in enumerate(circuit):
        if gate.num_qubits > chunk_bits:
            raise CircuitError(
                f"gate {gate} is wider than the chunk ({chunk_bits} qubits)"
            )
        needed_positions = {layout[q] for q in gate.qubits}
        for q in gate.qubits:
            position = layout[q]
            if position < chunk_bits:
                continue
            # Evict the least-recently-used in-chunk position this gate
            # does not itself need.
            candidates = [
                p for p in range(chunk_bits) if p not in needed_positions
            ]
            victim = min(candidates, key=lambda p: last_used[p])
            out.swap(victim, position)
            evicted = occupant[victim]
            layout[q], layout[evicted] = victim, position
            occupant[victim], occupant[position] = q, evicted
            needed_positions = {layout[g] for g in gate.qubits}
        for q in gate.qubits:
            last_used[layout[q]] = step
        out.append(gate.remapped(layout))
    return out, dict(layout)


def permute_statevector(amplitudes: np.ndarray, mapping: dict[int, int]) -> np.ndarray:
    """Relabel a state vector's qubits: output qubit ``mapping[q]`` carries
    what input qubit ``q`` carried.

    Used to compare a layout-transformed run against the original
    labelling: ``permute_statevector(simulate(original), mapping) ==
    simulate(apply_layout(original, mapping))``.
    """
    n = int(amplitudes.size).bit_length() - 1
    if amplitudes.size != 1 << n:
        raise CircuitError("amplitude count is not a power of two")
    expected = set(range(n))
    if set(mapping) != expected or set(mapping.values()) != expected:
        raise CircuitError("layout mapping must be a register permutation")
    tensor = np.asarray(amplitudes).reshape((2,) * n)
    # Axis for qubit q (LSB-first) is n-1-q.  The output's qubit
    # mapping[q] axis must come from the input's qubit q axis.
    source_axes = [0] * n
    for logical, physical in mapping.items():
        source_axes[n - 1 - physical] = n - 1 - logical
    return np.ascontiguousarray(tensor.transpose(source_axes)).reshape(-1)
