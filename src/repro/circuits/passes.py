"""Circuit transformation passes (transpile-lite).

QISKit-Aer runs its default transpilation before simulating, so the paper's
gate counts are post-transpilation.  This module provides the passes needed
to put library circuits in the same shape:

* :func:`decompose` - lower multi-qubit library gates onto the
  {1-qubit, cx, cp} basis (rzz, swap, ccx, ccz, cy, crz),
* :func:`merge_single_qubit_runs` - multiply adjacent single-qubit gates on
  the same qubit into one ``u`` gate,
* :func:`cancel_inverse_pairs` - drop adjacent self-inverse pairs and
  rotation pairs that sum to zero,
* :func:`transpile` - the composition, iterated to a fixed point.

Every pass preserves the circuit's unitary action exactly (up to global
phase for merged ``u`` gates), which the test suite verifies by state
comparison on random circuits.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate

_ATOL = 1e-12


def _cx(a: int, b: int) -> Gate:
    return Gate("cx", (a, b))


def _decompose_gate(gate: Gate) -> list[Gate]:
    """Expand one gate into {1q, cx, cp} basis gates; identity for others."""
    if gate.name == "rzz":
        a, b = gate.qubits
        theta = gate.params[0]
        return [_cx(a, b), Gate("rz", (b,), (theta,)), _cx(a, b)]
    if gate.name == "swap":
        a, b = gate.qubits
        return [_cx(a, b), _cx(b, a), _cx(a, b)]
    if gate.name == "cy":
        control, target = gate.qubits
        return [Gate("sdg", (target,)), _cx(control, target), Gate("s", (target,))]
    if gate.name == "crz":
        control, target = gate.qubits
        half = gate.params[0] / 2
        return [
            Gate("rz", (target,), (half,)),
            _cx(control, target),
            Gate("rz", (target,), (-half,)),
            _cx(control, target),
        ]
    if gate.name == "ccz":
        c0, c1, target = gate.qubits
        half = math.pi / 2
        # Phase identity: b*c - (a^b)*c + a*c = 2*a*b*c, so three
        # half-strength controlled phases around a CX sandwich make CCZ.
        return [
            Gate("cp", (c1, target), (half,)),
            _cx(c0, c1),
            Gate("cp", (c1, target), (-half,)),
            _cx(c0, c1),
            Gate("cp", (c0, target), (half,)),
        ]
    if gate.name == "ccx":
        c0, c1, target = gate.qubits
        return (
            [Gate("h", (target,))]
            + _decompose_gate(Gate("ccz", (c0, c1, target)))
            + [Gate("h", (target,))]
        )
    return [gate]


def decompose(circuit: QuantumCircuit) -> QuantumCircuit:
    """Lower rzz/swap/cy/crz/ccx/ccz onto the {1q, cx, cp} basis."""
    gates: list[Gate] = []
    for gate in circuit:
        gates.extend(_decompose_gate(gate))
    return circuit.with_gates(gates)


def _u_params_from_matrix(matrix: np.ndarray) -> tuple[float, float, float]:
    """Recover ``u(theta, phi, lam)`` angles from a 2x2 unitary.

    The returned gate equals ``matrix`` up to a global phase.
    """
    # Strip global phase so that the (0,0) entry is real non-negative.
    magnitude = abs(matrix[0, 0])
    theta = 2.0 * math.atan2(abs(matrix[1, 0]), magnitude)
    if magnitude > _ATOL:
        phase = matrix[0, 0] / magnitude
        normalized = matrix / phase
    else:
        normalized = matrix / (matrix[1, 0] / abs(matrix[1, 0]))
    if abs(matrix[1, 0]) > _ATOL:
        phi = cmath.phase(normalized[1, 0])
    else:
        phi = 0.0
    if abs(matrix[0, 1]) > _ATOL:
        lam = cmath.phase(-normalized[0, 1])
    else:
        lam = cmath.phase(normalized[1, 1]) - phi if abs(normalized[1, 1]) > _ATOL else 0.0
    return theta, phi, lam


def merge_single_qubit_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fuse maximal runs of single-qubit gates per qubit into one ``u``.

    Runs of length one are kept verbatim (no reason to rewrite ``h`` as
    ``u``); longer runs become a single ``u`` gate equal to the product up
    to global phase.
    """
    gates: list[Gate] = []
    pending: dict[int, list[Gate]] = {}

    def flush(qubit: int) -> None:
        run = pending.pop(qubit, [])
        if not run:
            return
        if len(run) == 1:
            gates.append(run[0])
            return
        matrix = np.eye(2, dtype=np.complex128)
        for gate in run:
            matrix = gate.matrix() @ matrix
        theta, phi, lam = _u_params_from_matrix(matrix)
        gates.append(Gate("u", (qubit,), (theta, phi, lam)))

    for gate in circuit:
        if gate.num_qubits == 1:
            pending.setdefault(gate.qubits[0], []).append(gate)
            continue
        for qubit in gate.qubits:
            flush(qubit)
        gates.append(gate)
    for qubit in sorted(pending):
        flush(qubit)
    return circuit.with_gates(gates)


def cancel_inverse_pairs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove adjacent gate pairs that compose to the identity.

    Handles self-inverse gates (``h h``, ``cx cx`` on the same qubits...),
    named inverse pairs (``s sdg``), and rotation pairs whose angles cancel.
    "Adjacent" means no intervening gate touches any of the pair's qubits.
    """
    inverse_names = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}

    def cancels(a: Gate, b: Gate) -> bool:
        if a.qubits != b.qubits:
            return False
        if a.name == b.name and a.spec.self_inverse:
            return True
        if inverse_names.get(a.name) == b.name:
            return True
        if (
            a.name == b.name
            and a.spec.num_params == 1
            and abs(a.params[0] + b.params[0]) < _ATOL
        ):
            return True
        return False

    gates = list(circuit)
    changed = True
    while changed:
        changed = False
        result: list[Gate] = []
        # last_on[q] = index into `result` of the last gate touching q.
        last_on: dict[int, int] = {}
        for gate in gates:
            previous = {last_on.get(q) for q in gate.qubits}
            if len(previous) == 1:
                (index,) = previous
                if index is not None and cancels(result[index], gate):
                    sentinel = result[index]
                    result[index] = None  # type: ignore[call-overload]
                    for q, pointer in list(last_on.items()):
                        if pointer == index:
                            del last_on[q]
                    # Recompute last_on for affected qubits.
                    for q in sentinel.qubits:
                        for back in range(len(result) - 1, -1, -1):
                            if result[back] is not None and q in result[back].qubits:
                                last_on[q] = back
                                break
                    changed = True
                    continue
            result.append(gate)
            for q in gate.qubits:
                last_on[q] = len(result) - 1
        gates = [g for g in result if g is not None]
    return circuit.with_gates(gates)


def transpile(
    circuit: QuantumCircuit, basis_only: bool = False, tracer=None
) -> QuantumCircuit:
    """Decompose, then merge and cancel to a fixed point.

    Args:
        circuit: Circuit to transform.
        basis_only: Stop after decomposition (no merging/cancelling).
        tracer: Optional :class:`~repro.obs.Tracer`; each pass iteration
            becomes a ``transpile``-stage span.
    """
    if tracer is None:
        from repro.obs.tracer import NULL_TRACER

        tracer = NULL_TRACER
    with tracer.span("decompose", stage="transpile", gates=len(circuit)):
        current = decompose(circuit)
    if basis_only:
        return current
    iteration = 0
    while True:
        with tracer.span("merge_cancel", stage="transpile", iteration=iteration):
            merged = merge_single_qubit_runs(cancel_inverse_pairs(current))
        if len(merged) == len(current) and merged.gates == current.gates:
            if tracer.enabled:
                tracer.counters.count("transpile.passes", iteration + 1)
                tracer.counters.count("transpile.gates_in", len(circuit))
                tracer.counters.count("transpile.gates_out", len(merged))
            return merged
        current = merged
        iteration += 1
