"""Circuit equivalence checking.

Used throughout the test suite and by the transpiler passes to certify that
transformations preserve a circuit's action.  Two checks are offered:

* :func:`states_equivalent` - compare final states from ``|0...0>`` (fast;
  sufficient for simulator workloads, which always start there),
* :func:`unitaries_equivalent` - build both full unitaries and compare up
  to global phase (exact, exponential in width; fine below ~10 qubits).

Global-phase alignment is done pairwise through the overlap
``<a|b>`` (``tr(A^dagger B)`` for matrices): if ``b = e^{i phi} a`` the
overlap's phase is exactly ``phi``, and the rotation is numerically stable
(no dependence on which entry happens to be the largest).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.errors import SimulationError
from repro.statevector.apply import apply_gate
from repro.statevector.state import simulate


def _align_phase(reference: np.ndarray, other: np.ndarray) -> np.ndarray:
    """Rotate ``other`` by the global phase that best matches ``reference``."""
    overlap = np.vdot(reference, other)
    if abs(overlap) < 1e-300:
        return other  # orthogonal; no phase can reconcile them
    return other * (overlap.conjugate() / abs(overlap))


def states_equivalent(
    a: QuantumCircuit, b: QuantumCircuit, atol: float = 1e-10,
    up_to_global_phase: bool = True,
) -> bool:
    """True when both circuits map ``|0...0>`` to the same state."""
    if a.num_qubits != b.num_qubits:
        return False
    state_a = simulate(a).amplitudes
    state_b = simulate(b).amplitudes
    if up_to_global_phase:
        state_b = _align_phase(state_a, state_b)
    return bool(np.allclose(state_a, state_b, atol=atol))


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """The full ``2^n x 2^n`` unitary of a circuit (small widths only)."""
    if circuit.num_qubits > 12:
        raise SimulationError(
            f"building a {circuit.num_qubits}-qubit unitary needs "
            f"{4**circuit.num_qubits * 16 / 2**30:.1f} GiB"
        )
    dim = 1 << circuit.num_qubits
    # Evolve every basis state: row `k` of `rows` holds U|k>, so the
    # unitary is the transpose.  Rows are contiguous, which the gate
    # kernels require to write in place.
    rows = np.eye(dim, dtype=np.complex128)
    for k in range(dim):
        for gate in circuit:
            apply_gate(rows[k], gate)
    return rows.T.copy()


def unitaries_equivalent(
    a: QuantumCircuit, b: QuantumCircuit, atol: float = 1e-10,
    up_to_global_phase: bool = True,
) -> bool:
    """True when both circuits implement the same unitary."""
    if a.num_qubits != b.num_qubits:
        return False
    u_a = circuit_unitary(a)
    u_b = circuit_unitary(b)
    if up_to_global_phase:
        u_b = _align_phase(u_a, u_b)
    return bool(np.allclose(u_a, u_b, atol=atol))
