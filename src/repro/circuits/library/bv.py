"""Bernstein-Vazirani circuit (``bv``).

Finds a hidden bit-string ``s`` with one oracle query: prepare the ancilla in
``|->``, Hadamard the data register, apply the inner-product oracle (a CX
from every data qubit where ``s_i = 1`` onto the ancilla), and Hadamard the
data register again; the data register then reads ``s`` deterministically.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def bv(
    num_qubits: int, secret: int | None = None, seed: int = 0
) -> QuantumCircuit:
    """Build a Bernstein-Vazirani circuit.

    Args:
        num_qubits: Total width including the ancilla (the last qubit).
        secret: Hidden string over the ``num_qubits - 1`` data qubits; by
            default a dense random string (~95% ones, approximating the
            paper's gate count).
        seed: RNG seed used when ``secret`` is not given.

    Returns:
        The circuit; measuring data qubit ``i`` yields bit ``i`` of ``secret``.
    """
    if num_qubits < 2:
        raise ValueError("bv needs at least one data qubit plus the ancilla")
    data_bits = num_qubits - 1
    if secret is None:
        rng = np.random.default_rng(seed)
        bits = rng.random(data_bits) < 0.95
        secret = int(sum(1 << i for i in range(data_bits) if bits[i]))
    if not 0 <= secret < 2**data_bits:
        raise ValueError(f"secret {secret:#x} does not fit in {data_bits} bits")

    ancilla = num_qubits - 1
    circ = QuantumCircuit(num_qubits, name=f"bv_{num_qubits}")
    circ.x(ancilla)
    circ.h(ancilla)
    for q in range(data_bits):
        circ.h(q)
    for q in range(data_bits):
        if secret >> q & 1:
            circ.cx(q, ancilla)
    for q in range(data_bits):
        circ.h(q)
    return circ
