"""Graph-state preparation circuit (``gs``).

Follows the walk-through example of the paper's Fig. 8 (gs_5): a Hadamard on
every qubit followed by a chain of CNOTs along a path graph.  In the original
emission order all Hadamards come first, so every qubit is involved before
any entangling gate executes - exactly the situation the reordering pass
exploits.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit


def graph_state(num_qubits: int, seed: int = 0) -> QuantumCircuit:
    """Build the path graph-state circuit of Fig. 8.

    Args:
        num_qubits: Path length.
        seed: Unused; accepted for registry uniformity.

    Returns:
        ``n`` Hadamards followed by ``n-1`` CNOTs ``(0,1), (1,2), ...``.
    """
    del seed  # Deterministic circuit; parameter kept for a uniform interface.
    circ = QuantumCircuit(num_qubits, name=f"gs_{num_qubits}")
    for q in range(num_qubits):
        circ.h(q)
    for q in range(num_qubits - 1):
        circ.cx(q, q + 1)
    return circ
