"""Linear hydrogen-atom chain circuit (``hchain``).

Models the paper's quantum-chemistry benchmark: a first-order Trotterised
time evolution of a 1-D hydrogen-chain Hamiltonian under the Jordan-Wigner
mapping, as used in VQE/quantum-Krylov studies [Stair et al. 2020].

Structure per Trotter step:

* single-qubit ``rz`` rotations on every site (on-site/chemical-potential
  terms),
* nearest-neighbour hopping terms ``exp(-i theta XX)`` implemented with the
  standard basis-change sandwich ``H - CX - RZ - CX - H``,
* long-range density-density ``ZZ`` couplings at dyadic distances
  (2, 4, 8, ...) standing in for the Coulomb tail of the chain Hamiltonian.

The long-range couplings matter for the reproduction: they make every
qubit's step-``s+1`` gates depend on far-away qubits' step-``s`` gates, so
no gate reordering can delay involvement past the first couple of steps -
the paper's observation that hchain gains little from pruning or reordering
(Sections IV-C, V-A).  The Hadamard-heavy hopping terms keep the amplitude
distribution dense and incompressible, matching hchain's reported low
compressibility.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def _dyadic_pairs(num_qubits: int) -> list[tuple[int, int]]:
    """Coupling pairs (i, i+d) for dyadic distances d = 2, 4, 8, ..."""
    pairs: list[tuple[int, int]] = []
    distance = 2
    while distance < num_qubits:
        pairs.extend(
            (i, i + distance) for i in range(0, num_qubits - distance)
        )
        distance *= 2
    return pairs


def hchain(num_qubits: int, steps: int = 3, seed: int = 0) -> QuantumCircuit:
    """Build an ``hchain`` benchmark circuit.

    Args:
        num_qubits: Number of spin-orbital qubits (chain sites).
        steps: Trotter steps; the default approximates the paper's gate
            count of 1786 operations at 34 qubits.
        seed: Seed for the randomly drawn Hamiltonian coefficients.

    Returns:
        The benchmark circuit, named ``hchain_{num_qubits}``.
    """
    rng = np.random.default_rng(seed)
    circ = QuantumCircuit(num_qubits, name=f"hchain_{num_qubits}")

    # State preparation: Hartree-Fock-like reference, X on the occupied half.
    for q in range(num_qubits // 2):
        circ.x(q)

    dyadic = _dyadic_pairs(num_qubits)
    for _ in range(steps):
        # On-site terms.
        for q in range(num_qubits):
            circ.rz(float(rng.uniform(0, np.pi)), q)
        # Nearest-neighbour hopping exp(-i theta X_q X_{q+1}).
        for q in range(num_qubits - 1):
            theta = float(rng.uniform(0, np.pi))
            circ.h(q)
            circ.h(q + 1)
            circ.cx(q, q + 1)
            circ.rz(theta, q + 1)
            circ.cx(q, q + 1)
            circ.h(q)
            circ.h(q + 1)
        # Long-range density-density couplings exp(-i theta Z_i Z_j).
        for a, b in dyadic:
            circ.rzz(float(rng.uniform(0, np.pi)), a, b)
    return circ
