"""Random quantum circuits (``rqc`` and the deep ``grqc`` variant).

Follows the construction rules of Boixo et al., "Characterizing quantum
supremacy in near-term devices": a layer of Hadamards, then ``depth`` cycles
where each cycle applies a pattern of CZ gates on a (pseudo-)2D grid followed
by random single-qubit gates from {T, sqrt(X), sqrt(Y)} on qubits that
participated in a CZ during the previous cycle (first single-qubit gate on a
qubit is always T, per the published rules).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def _grid_shape(num_qubits: int) -> tuple[int, int]:
    """Pick a near-square grid with ``rows*cols >= num_qubits``."""
    rows = int(np.floor(np.sqrt(num_qubits)))
    while rows > 1 and num_qubits % rows and rows * (num_qubits // rows + 1) < num_qubits:
        rows -= 1
    cols = (num_qubits + rows - 1) // rows
    return rows, cols


def _cz_layers(num_qubits: int) -> list[list[tuple[int, int]]]:
    """The eight alternating CZ patterns over grid edges (Boixo et al.)."""
    rows, cols = _grid_shape(num_qubits)

    def qubit(r: int, c: int) -> int | None:
        index = r * cols + c
        return index if index < num_qubits else None

    horizontal_even, horizontal_odd = [], []
    vertical_even, vertical_odd = [], []
    for r in range(rows):
        for c in range(cols - 1):
            a, b = qubit(r, c), qubit(r, c + 1)
            if a is None or b is None:
                continue
            (horizontal_even if c % 2 == 0 else horizontal_odd).append((a, b))
    for r in range(rows - 1):
        for c in range(cols):
            a, b = qubit(r, c), qubit(r + 1, c)
            if a is None or b is None:
                continue
            (vertical_even if r % 2 == 0 else vertical_odd).append((a, b))
    layers = [horizontal_even, vertical_even, horizontal_odd, vertical_odd]
    layers = [layer for layer in layers if layer]
    # Repeat with reversed scan direction to emulate the 8-pattern schedule.
    return layers + [list(reversed(layer)) for layer in layers]


def rqc(num_qubits: int, depth: int = 6, seed: int = 0) -> QuantumCircuit:
    """Build a random quantum circuit of the given cycle ``depth``.

    Args:
        num_qubits: Grid qubits.
        depth: Number of CZ+single-qubit cycles (6 approximates the paper's
            shallow ``rqc``; use ~40 for the deep variants of Table III).
        seed: RNG seed for single-qubit gate choices.
    """
    rng = np.random.default_rng(seed)
    circ = QuantumCircuit(num_qubits, name=f"rqc_{num_qubits}")

    # The opening Hadamard layer is emitted lazily: h(q) appears immediately
    # before qubit q's first two-qubit gate.  This is semantically identical
    # (h(q) commutes with every gate not touching q) and reproduces the
    # paper's Table II involvement profile for rqc (~44% of operations before
    # full involvement) instead of involving all qubits in the first layer.
    hadamard_done = [False] * num_qubits

    def ensure_h(q: int) -> None:
        if not hadamard_done[q]:
            circ.h(q)
            hadamard_done[q] = True

    layers = _cz_layers(num_qubits)
    had_t = [False] * num_qubits
    touched_previous: set[int] = set()
    for cycle in range(depth):
        pattern = layers[cycle % len(layers)]
        for q in sorted(touched_previous):
            if not had_t[q]:
                circ.t(q)
                had_t[q] = True
            else:
                circ.sx(q) if rng.random() < 0.5 else circ.sy(q)
        touched_previous = set()
        for a, b in pattern:
            ensure_h(a)
            ensure_h(b)
            circ.cz(a, b)
            touched_previous.update((a, b))
    # Qubits never covered by a CZ pattern still need their Hadamard.
    for q in range(num_qubits):
        ensure_h(q)
    return circ


def grqc(num_qubits: int, depth: int = 40, seed: int = 0) -> QuantumCircuit:
    """Deep Google-style random circuit used in the paper's Table III."""
    circ = rqc(num_qubits, depth=depth, seed=seed)
    circ.name = f"grqc_{num_qubits}"
    return circ
