"""Quantum approximate optimization algorithm circuit (``qaoa``).

A depth-``p`` QAOA ansatz for MaxCut on a random graph: an initial Hadamard
layer, then ``p`` rounds of cost layer (``rzz`` per edge) and mixer layer
(``rx`` per qubit).

The default is the paper's configuration: ``p = 1`` on a dense random graph.
That shape produces the paper's two qaoa behaviours at once:

* *reorder-resistant* (Fig. 9): the dense edge set involves every qubit
  almost immediately in any legal order, so pruning gains nothing;
* *highly compressible* (Fig. 10): until the single mixer layer at the very
  end, the state is a uniform-magnitude phase state whose amplitudes take
  only ~|E| distinct values (one per cut size), so consecutive-amplitude
  residuals concentrate at zero and GFC compresses well for ~90% of the
  circuit's gates.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def random_graph_edges(
    num_qubits: int, num_edges: int, rng: np.random.Generator
) -> list[tuple[int, int]]:
    """A connected random graph: a Hamiltonian path plus random chords."""
    edges: list[tuple[int, int]] = [(q, q + 1) for q in range(num_qubits - 1)]
    existing = set(edges)
    max_edges = num_qubits * (num_qubits - 1) // 2
    target = min(num_edges, max_edges)
    while len(edges) < target:
        a, b = sorted(rng.choice(num_qubits, size=2, replace=False).tolist())
        if (a, b) not in existing:
            existing.add((a, b))
            edges.append((a, b))
    return edges


def qaoa(
    num_qubits: int,
    rounds: int = 1,
    edge_density: float = 0.4,
    seed: int = 0,
) -> QuantumCircuit:
    """Build a MaxCut QAOA circuit.

    Args:
        num_qubits: Graph vertices.
        rounds: QAOA depth ``p`` (the paper's instance behaves as ``p=1``).
        edge_density: Fraction of all qubit pairs coupled by an ``rzz``.
        seed: RNG seed for graph topology and angles.
    """
    rng = np.random.default_rng(seed)
    num_edges = max(num_qubits - 1, int(edge_density * num_qubits * (num_qubits - 1) / 2))
    edges = random_graph_edges(num_qubits, num_edges, rng)
    gammas = rng.uniform(0, np.pi, size=rounds)
    betas = rng.uniform(0, np.pi, size=rounds)

    circ = QuantumCircuit(num_qubits, name=f"qaoa_{num_qubits}")
    for q in range(num_qubits):
        circ.h(q)
    for round_index in range(rounds):
        for a, b in edges:
            circ.rzz(float(gammas[round_index]), a, b)
        for q in range(num_qubits):
            circ.rx(float(betas[round_index]), q)
    return circ
