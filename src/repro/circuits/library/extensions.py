"""Extension circuits beyond the paper's Table I.

The paper positions Q-GPU as "a more general simulator that can support any
quantum application" (Section VI); these generators exercise that claim with
three standard algorithm families not in the benchmark set.  They are used
by the extension tests and ablation benches, never by the paper-artifact
experiments.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def ghz(num_qubits: int, seed: int = 0) -> QuantumCircuit:
    """GHZ state preparation: ``H`` then a CNOT ladder.

    The final state is ``(|0...0> + |1...1>)/sqrt(2)`` - only 2 of ``2^n``
    amplitudes are non-zero, the extreme case for value-level sparsity that
    involvement-based pruning deliberately does *not* exploit (involvement
    is a structural bound, not a value test).
    """
    del seed
    circ = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circ.h(0)
    for q in range(num_qubits - 1):
        circ.cx(q, q + 1)
    return circ


def w_state(num_qubits: int, seed: int = 0) -> QuantumCircuit:
    """W-state preparation via cascaded controlled rotations.

    ``|W> = (|10...0> + |01...0> + ... + |00...1>)/sqrt(n)``: built with the
    standard ladder of ``ry`` rotations controlled on the previous qubit
    (realised here as ry/cx sandwiches), then a CNOT chain.
    """
    del seed
    circ = QuantumCircuit(num_qubits, name=f"w_{num_qubits}")
    circ.x(0)
    for k in range(1, num_qubits):
        # Controlled-ry(theta) with control k-1, target k, built from
        # ry(theta/2) sandwiches: transfers amplitude 1/(n-k+1) onward.
        theta = 2.0 * math.acos(math.sqrt(1.0 / (num_qubits - k + 1)))
        circ.ry(theta / 2, k)
        circ.cx(k - 1, k)
        circ.ry(-theta / 2, k)
        circ.cx(k - 1, k)
        circ.cx(k, k - 1)
    return circ


def grover(num_qubits: int, marked: int | None = None, iterations: int | None = None,
           seed: int = 0) -> QuantumCircuit:
    """Grover search for one marked basis state.

    Uses a phase oracle built from ``x`` conjugation plus a multi-controlled
    ``Z`` (cascaded through ``ccz``/``cz`` for up to moderate widths), and
    the standard diffusion operator.  With the optimal iteration count the
    marked state's probability approaches 1.

    Args:
        num_qubits: Search register width (practical up to ~12 for the
            multi-controlled-Z cascade used here).
        marked: Marked basis index (random by default).
        iterations: Grover iterations; defaults to the optimum
            ``round(pi/4 * sqrt(2^n))``.
        seed: RNG seed for the default marked element.
    """
    rng = np.random.default_rng(seed)
    if marked is None:
        marked = int(rng.integers(0, 1 << num_qubits))
    if not 0 <= marked < 1 << num_qubits:
        raise ValueError(f"marked index {marked} out of range")
    if iterations is None:
        iterations = max(1, round(math.pi / 4 * math.sqrt(1 << num_qubits)))

    circ = QuantumCircuit(num_qubits, name=f"grover_{num_qubits}")

    def multi_controlled_z() -> None:
        """Phase flip on |1...1> using a ccz cascade (no ancillas <= 3q)."""
        if num_qubits == 1:
            circ.z(0)
        elif num_qubits == 2:
            circ.cz(0, 1)
        elif num_qubits == 3:
            circ.ccz(0, 1, 2)
        else:
            # Recursive split: C^n Z = C^2(C^{n-2} Z) via phase halving --
            # for simulation purposes use the exact diagonal construction:
            # cp cascade implementing the |1..1| projector phase.
            _phase_on_all_ones(circ, list(range(num_qubits)), math.pi)

    def flip_zeros_of(value: int) -> None:
        for q in range(num_qubits):
            if not value >> q & 1:
                circ.x(q)

    for q in range(num_qubits):
        circ.h(q)
    for _ in range(iterations):
        # Oracle: phase-flip |marked>.
        flip_zeros_of(marked)
        multi_controlled_z()
        flip_zeros_of(marked)
        # Diffusion: H X (C^n Z) X H.
        for q in range(num_qubits):
            circ.h(q)
            circ.x(q)
        multi_controlled_z()
        for q in range(num_qubits):
            circ.x(q)
            circ.h(q)
    return circ


def _phase_on_all_ones(circ: QuantumCircuit, qubits: list[int], angle: float) -> None:
    """Apply ``e^{i angle}`` exactly on the all-ones subspace of ``qubits``.

    Recursive construction with controlled-phase halving:
    ``C^k P(a) = P(a/2) on q_k  .  C^{k-1} X . C P(-a/2) ... `` - here we
    use the simpler exact recursion
    ``C^k P(a) = C^{k-1} P(a/2) . CX(q_{k-1}, q_k)-conjugated C^{k-1} P(-a/2)
    on the tail . C P(a/2)``, bottoming out at ``cp``.
    """
    if len(qubits) == 1:
        circ.p(angle, qubits[0])
        return
    if len(qubits) == 2:
        circ.cp(angle, qubits[0], qubits[1])
        return
    *head, last = qubits
    circ.cp(angle / 2, head[-1], last)
    _phase_on_all_ones_cx(circ, head)
    circ.cp(-angle / 2, head[-1], last)
    _phase_on_all_ones_cx(circ, head)
    _phase_on_all_ones(circ, head[:-1] + [last], angle / 2)


def _phase_on_all_ones_cx(circ: QuantumCircuit, qubits: list[int]) -> None:
    """Multi-controlled X of ``qubits[:-1]`` onto ``qubits[-1]`` (recursive)."""
    if len(qubits) == 1:
        circ.x(qubits[0])
    elif len(qubits) == 2:
        circ.cx(qubits[0], qubits[1])
    elif len(qubits) == 3:
        circ.ccx(qubits[0], qubits[1], qubits[2])
    else:
        # V-chain-free recursive construction (Barenco et al. style) using
        # the phase decomposition: X = H Z H on the target.
        target = qubits[-1]
        circ.h(target)
        _phase_on_all_ones(circ, qubits, math.pi)
        circ.h(target)


EXTENSION_BUILDERS = {
    "ghz": ghz,
    "w": w_state,
    "grover": grover,
}
