"""Registry of the paper's nine benchmark circuit families (Table I).

Every generator has the uniform signature ``build(num_qubits, seed=0, **kw)``
and returns a :class:`~repro.circuits.circuit.QuantumCircuit` named
``family_{num_qubits}``, matching the ``circ_n`` naming used throughout the
paper.
"""

from __future__ import annotations

from typing import Callable

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library.bv import bv
from repro.circuits.library.extensions import EXTENSION_BUILDERS
from repro.circuits.library.graph_state import graph_state
from repro.circuits.library.hchain import hchain
from repro.circuits.library.hlf import hlf
from repro.circuits.library.iqp import iqp
from repro.circuits.library.qaoa import qaoa
from repro.circuits.library.qft import qft
from repro.circuits.library.quadratic_form import quadratic_form
from repro.circuits.library.rqc import grqc, rqc
from repro.errors import CircuitError

BUILDERS: dict[str, Callable[..., QuantumCircuit]] = {
    "hchain": hchain,
    "rqc": rqc,
    "qaoa": qaoa,
    "gs": graph_state,
    "hlf": hlf,
    "qft": qft,
    "iqp": iqp,
    "qf": quadratic_form,
    "bv": bv,
    "grqc": grqc,
    # Extension circuits beyond the paper's Table I (never used by the
    # paper-artifact experiments, which iterate FAMILIES).
    **EXTENSION_BUILDERS,
}

#: The nine benchmark families of the paper's Table I, in table order.
FAMILIES: tuple[str, ...] = (
    "hchain", "rqc", "qaoa", "gs", "hlf", "qft", "iqp", "qf", "bv",
)


def get_circuit(family: str, num_qubits: int, seed: int = 0, **kwargs) -> QuantumCircuit:
    """Build benchmark circuit ``family`` at width ``num_qubits``.

    Args:
        family: One of :data:`FAMILIES` (plus ``"grqc"`` for Table III).
        num_qubits: Register width.
        seed: Deterministic seed for randomised families.
        **kwargs: Family-specific options forwarded to the generator.

    Raises:
        CircuitError: If ``family`` is unknown.
    """
    builder = BUILDERS.get(family)
    if builder is None:
        known = ", ".join(sorted(BUILDERS))
        raise CircuitError(f"unknown circuit family {family!r} (known: {known})")
    return builder(num_qubits, seed=seed, **kwargs)
