"""Hidden linear function circuit (``hlf``).

The 2D hidden-linear-function problem of Bravyi, Gosset and Koenig ("Quantum
advantage with shallow circuits"): a constant-depth Clifford circuit
``H^n . U_q . H^n`` where ``U_q`` is the diagonal unitary of a binary
quadratic form ``q(x) = 2 * sum A_ij x_i x_j + sum b_i x_i`` implemented with
CZ gates (off-diagonal couplings on a grid) and S gates (linear part).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def hlf(num_qubits: int, seed: int = 0, coupling_density: float = 0.5) -> QuantumCircuit:
    """Build a hidden-linear-function circuit on a pseudo-2D grid.

    Args:
        num_qubits: Problem size.
        seed: RNG seed for the adjacency matrix ``A`` and vector ``b``.
        coupling_density: Probability that a grid edge appears in ``A``.
    """
    rng = np.random.default_rng(seed)
    cols = max(2, int(np.ceil(np.sqrt(num_qubits))))

    edges: list[tuple[int, int]] = []
    for q in range(num_qubits):
        right = q + 1
        below = q + cols
        if right < num_qubits and right % cols != 0 and rng.random() < coupling_density:
            edges.append((q, right))
        if below < num_qubits and rng.random() < coupling_density:
            edges.append((q, below))

    diagonal = [q for q in range(num_qubits) if rng.random() < 0.5]

    circ = QuantumCircuit(num_qubits, name=f"hlf_{num_qubits}")
    for q in range(num_qubits):
        circ.h(q)
    for a, b in edges:
        circ.cz(a, b)
    for q in diagonal:
        circ.s(q)
    for q in range(num_qubits):
        circ.h(q)
    return circ
