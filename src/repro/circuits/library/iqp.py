"""Instantaneous quantum polynomial-time circuit (``iqp``).

An IQP circuit is ``H^n . D . H^n`` with ``D`` diagonal (Bremner, Jozsa,
Shepherd).  Gates inside ``D`` commute freely, and each ``h(i)`` commutes
with every gate not touching qubit ``i``, so the circuit can be emitted in
per-qubit blocks: ``h(i)`` followed by qubit ``i``'s diagonal gates
(``cp`` couplings to earlier qubits and a ``p`` phase).  This emission order
is semantically identical to the layered form but involves qubit ``i`` only
when its block starts - reproducing the paper's Table II observation that
~90% of iqp operations execute before the last qubit is involved, which
makes iqp the benchmark with the largest pruning potential.

The trailing Hadamard layer is folded into an X-basis measurement by default
(``final_h_layer=False``), as is conventional for IQP sampling.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def iqp(
    num_qubits: int,
    coupling_density: float = 0.08,
    final_h_layer: bool = False,
    seed: int = 0,
) -> QuantumCircuit:
    """Build an IQP circuit with a random upper-triangular coupling matrix.

    Args:
        num_qubits: Problem size.
        coupling_density: Probability of a ``cp`` coupling per qubit pair.
        final_h_layer: Emit the trailing ``H`` layer explicitly instead of
            folding it into the measurement basis.
        seed: RNG seed for couplings and phases.
    """
    rng = np.random.default_rng(seed)
    circ = QuantumCircuit(num_qubits, name=f"iqp_{num_qubits}")
    for i in range(num_qubits):
        circ.h(i)
        for j in range(i):
            if rng.random() < coupling_density:
                power = int(rng.integers(1, 4))
                circ.cp(math.pi / 2**power, j, i)
        circ.p(math.pi / 2 ** int(rng.integers(1, 4)), i)
    if final_h_layer:
        for i in range(num_qubits):
            circ.h(i)
    return circ
