"""Quantum Fourier transform circuit (``qft``).

Standard textbook QFT: for each qubit ``j`` from the most significant down,
a Hadamard followed by controlled-phase rotations ``cp(pi/2^k)`` from every
less significant qubit.  The first block touches every qubit, so in original
order all qubits are involved within the first ``n`` operations - the paper's
Table II "early involvement" behaviour - while reordering can substantially
delay involvement (paper Fig. 9, qft_22).

An ``approximation_degree`` caps the controlled-phase distance (rotations
smaller than ``pi/2^degree`` are dropped), matching the approximate QFT the
paper's gate counts imply.
"""

from __future__ import annotations

import math

from repro.circuits.circuit import QuantumCircuit


def qft(
    num_qubits: int,
    approximation_degree: int | None = None,
    include_swaps: bool = False,
    seed: int = 0,
) -> QuantumCircuit:
    """Build a QFT circuit.

    Args:
        num_qubits: Transform size.
        approximation_degree: Maximum control-target distance for ``cp``
            rotations; ``None`` keeps all rotations (exact QFT).
        include_swaps: Append the final bit-reversal swap network.
        seed: Unused; accepted for registry uniformity.
    """
    del seed
    circ = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    max_distance = approximation_degree or num_qubits - 1
    for j in reversed(range(num_qubits)):
        circ.h(j)
        for distance in range(1, j + 1):
            if distance > max_distance:
                break
            control = j - distance
            circ.cp(math.pi / (2**distance), control, j)
    if include_swaps:
        for q in range(num_qubits // 2):
            circ.swap(q, num_qubits - 1 - q)
    return circ
