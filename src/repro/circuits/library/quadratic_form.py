"""Quadratic-form circuit (``qf``).

Encodes a quadratic form ``Q(x) = x^T A x + b^T x`` over binary variables
into the phase of a result register held in the Fourier basis, as used by
Grover adaptive search (Gilliam, Woerner, Gonciulea).  Structure:

* ``H`` on every input qubit (uniform superposition over ``x``),
* ``H`` on every result qubit (Fourier basis),
* linear terms: ``cp`` rotations from each input onto each result bit,
* quadratic terms: ``rzz``-mediated couplings between inputs followed by a
  phase kickback rotation on the result register,
* an inverse QFT on the result register.

All qubits are involved by the initial Hadamard layers, matching the paper's
observation that ``qf`` has little pruning potential (Table II: 7.21%).
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library.qft import qft


def quadratic_form(
    num_qubits: int, result_bits: int | None = None, seed: int = 0
) -> QuantumCircuit:
    """Build a quadratic-form phase-encoding circuit.

    Args:
        num_qubits: Total width; the top ``result_bits`` qubits hold the
            Fourier-encoded value, the rest encode the binary variables.
        result_bits: Result register width (default ``max(2, n // 4)``).
        seed: RNG seed for the form's coefficients.
    """
    rng = np.random.default_rng(seed)
    if result_bits is None:
        result_bits = max(2, num_qubits // 4)
    if result_bits >= num_qubits:
        raise ValueError("result register must be narrower than the circuit")
    num_inputs = num_qubits - result_bits
    inputs = list(range(num_inputs))
    results = list(range(num_inputs, num_qubits))

    circ = QuantumCircuit(num_qubits, name=f"qf_{num_qubits}")
    for q in inputs:
        circ.h(q)
    for q in results:
        circ.h(q)

    # Linear terms b_i * x_i: phase rotation on each result bit controlled by
    # each input (the result bit at position k accumulates theta * 2^k).
    for i, q_in in enumerate(inputs):
        coefficient = int(rng.integers(1, 2**result_bits))
        for k, q_out in enumerate(results):
            angle = 2 * math.pi * coefficient * 2**k / 2**result_bits
            angle = math.remainder(angle, 2 * math.pi)
            if abs(angle) > 1e-12:
                circ.cp(angle, q_in, q_out)

    # Quadratic terms A_ij * x_i * x_j on a sparse random pair set.
    num_pairs = max(1, num_inputs // 2)
    for _ in range(num_pairs):
        a, b = sorted(rng.choice(num_inputs, size=2, replace=False).tolist())
        circ.rzz(float(rng.uniform(0, math.pi)), a, b)

    # Read the value out of the Fourier basis.
    inverse_qft = qft(result_bits).inverse()
    offset = num_inputs
    for gate in inverse_qft:
        circ.append(gate.remapped({q: q + offset for q in range(result_bits)}))
    return circ
