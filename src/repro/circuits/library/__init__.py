"""Benchmark circuit generators (paper Table I)."""

from repro.circuits.library.bv import bv
from repro.circuits.library.graph_state import graph_state
from repro.circuits.library.hchain import hchain
from repro.circuits.library.hlf import hlf
from repro.circuits.library.iqp import iqp
from repro.circuits.library.qaoa import qaoa
from repro.circuits.library.qft import qft
from repro.circuits.library.quadratic_form import quadratic_form
from repro.circuits.library.registry import BUILDERS, FAMILIES, get_circuit
from repro.circuits.library.rqc import grqc, rqc

__all__ = [
    "BUILDERS",
    "FAMILIES",
    "bv",
    "get_circuit",
    "graph_state",
    "grqc",
    "hchain",
    "hlf",
    "iqp",
    "qaoa",
    "qft",
    "quadratic_form",
    "rqc",
]
