"""Gate fusion: grouping adjacent gates into multi-qubit super-gates.

Qsim-Cirq's main CPU advantage over a plain state-vector loop is gate
fusion: consecutive gates acting on overlapping qubit sets are multiplied
into one ``2^k x 2^k`` matrix and applied in a single pass over the state,
cutting memory traffic by the fusion factor.  QISKit-Aer ships the same
optimization (enabled by default in both the paper's baseline and Q-GPU, so
it cancels out of the normalized comparisons); here it feeds the Qsim-Cirq
cost model and the fusion ablation bench.

The pass is greedy and structural; :meth:`FusedBlock.matrix` additionally
forms the fused unitary (what a real fusion pass uploads to the GPU), and
:func:`apply_fused` runs a circuit through its fused blocks on a dense
state - validating the optimization functionally, not just by gate counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.errors import SimulationError


@dataclass(frozen=True)
class FusedBlock:
    """A group of consecutive gates applied as one multi-qubit pass.

    Attributes:
        gates: The member gates, in circuit order.
        qubits: Union of the member gates' qubits, sorted.
    """

    gates: tuple[Gate, ...]
    qubits: tuple[int, ...]

    @property
    def width(self) -> int:
        return len(self.qubits)

    def matrix(self) -> np.ndarray:
        """The fused ``2^width x 2^width`` unitary (members multiplied).

        Basis convention matches :class:`~repro.circuits.gates.Gate`:
        ``qubits[0]`` is the least significant matrix axis.
        """
        position = {q: k for k, q in enumerate(self.qubits)}
        dim = 1 << self.width
        fused = np.eye(dim, dtype=np.complex128)
        for gate in self.gates:
            local = gate.matrix()
            k = gate.num_qubits
            gate_positions = [position[q] for q in gate.qubits]
            embedded = np.zeros((dim, dim), dtype=np.complex128)
            for column in range(dim):
                local_in = 0
                for bit_index, p in enumerate(gate_positions):
                    local_in |= (column >> p & 1) << bit_index
                for local_out in range(1 << k):
                    amplitude = local[local_out, local_in]
                    if amplitude == 0:
                        continue
                    row = column
                    for bit_index, p in enumerate(gate_positions):
                        bit = local_out >> bit_index & 1
                        row = (row & ~(1 << p)) | (bit << p)
                    embedded[row, column] += amplitude
            fused = embedded @ fused
        return fused


def apply_fused(
    state: np.ndarray, circuit: QuantumCircuit, max_fused_qubits: int = 4
) -> np.ndarray:
    """Apply ``circuit`` to ``state`` through fused multi-qubit passes.

    One :func:`~repro.statevector.apply.apply_matrix` call per fused block
    instead of one per gate - the functional realisation of the fusion
    optimization.  Returns ``state`` (updated in place).
    """
    from repro.statevector.apply import apply_matrix

    for block in fuse(circuit, max_fused_qubits):
        apply_matrix(state, block.matrix(), block.qubits)
    return state


def fuse(circuit: QuantumCircuit, max_fused_qubits: int = 4) -> list[FusedBlock]:
    """Greedy gate fusion up to ``max_fused_qubits``-wide blocks.

    A gate joins the current block when the union of qubits stays within
    the limit *and* the gate touches the block (shares a qubit) or the block
    is empty; otherwise the block is flushed.  Disjoint gates deliberately
    do not fuse - a fused pass over unrelated qubits would touch the whole
    state with a wider matrix for no traffic saving.

    Args:
        circuit: Circuit to fuse.
        max_fused_qubits: Widest allowed block (Qsim uses 4 by default).

    Returns:
        Blocks in execution order; concatenating their gates reproduces the
        circuit.
    """
    if max_fused_qubits < 1:
        raise SimulationError("max_fused_qubits must be >= 1")
    blocks: list[FusedBlock] = []
    current: list[Gate] = []
    current_qubits: set[int] = set()

    def flush() -> None:
        nonlocal current, current_qubits
        if current:
            blocks.append(
                FusedBlock(gates=tuple(current), qubits=tuple(sorted(current_qubits)))
            )
            current = []
            current_qubits = set()

    for gate in circuit:
        gate_qubits = set(gate.qubits)
        union = current_qubits | gate_qubits
        touches = bool(current_qubits & gate_qubits) or not current
        if touches and len(union) <= max_fused_qubits:
            current.append(gate)
            current_qubits = union
        else:
            flush()
            current = [gate]
            current_qubits = gate_qubits
    flush()
    return blocks


def fusion_factor(circuit: QuantumCircuit, max_fused_qubits: int = 4) -> float:
    """Gates per fused pass: ``len(circuit) / len(fuse(circuit))``."""
    blocks = fuse(circuit, max_fused_qubits)
    if not blocks:
        return 1.0
    return len(circuit) / len(blocks)
