"""Q-GPU: a recipe of optimizations for quantum circuit simulation on GPUs.

A full reproduction of Zhao et al., HPCA 2022.  Public surface:

* :mod:`repro.circuits` - circuit IR, DAG, OpenQASM, benchmark library;
* :mod:`repro.statevector` - dense and chunked functional simulation;
* :mod:`repro.core` - involvement/pruning/reordering, the six execution
  versions, the timed executor, and the :class:`~repro.core.QGpuSimulator`
  facade;
* :mod:`repro.hardware` - the calibrated GPU-server model;
* :mod:`repro.compression` - the GFC lossless codec;
* :mod:`repro.comparisons` - CPU-OpenMP / Qsim-Cirq / QDK cost models;
* :mod:`repro.experiments` - one module per paper table/figure.
"""

from repro.circuits import Gate, GateDag, QuantumCircuit, from_qasm, to_qasm
from repro.circuits.library import FAMILIES, get_circuit
from repro.core import (
    ALL_VERSIONS,
    BASELINE,
    NAIVE,
    OVERLAP,
    PRUNING,
    QGPU,
    QGpuSimulator,
    REORDER,
    TimedResult,
    VersionConfig,
    reorder,
)
from repro.errors import ReproError
from repro.hardware import MACHINES, Machine, MachineSpec, PAPER_MACHINE
from repro.statevector import StateVector, simulate

__version__ = "1.0.0"

__all__ = [
    "ALL_VERSIONS",
    "BASELINE",
    "FAMILIES",
    "Gate",
    "GateDag",
    "MACHINES",
    "Machine",
    "MachineSpec",
    "NAIVE",
    "OVERLAP",
    "PAPER_MACHINE",
    "PRUNING",
    "QGPU",
    "QGpuSimulator",
    "QuantumCircuit",
    "REORDER",
    "ReproError",
    "StateVector",
    "TimedResult",
    "VersionConfig",
    "from_qasm",
    "get_circuit",
    "reorder",
    "simulate",
    "to_qasm",
]
