"""Execution-time breakdowns (paper Figs. 2 and 4).

Splits a :class:`~repro.core.executor.TimedResult` into the categories the
paper plots: CPU compute, GPU compute, data movement (+synchronisation), and
codec time, as fractions of the total.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.executor import TimedResult


@dataclass(frozen=True)
class Breakdown:
    """Execution-time shares of one run.

    Attributes:
        circuit_name: Circuit the run executed.
        version: Version name.
        total_seconds: Modelled wall-clock.
        cpu: CPU-compute share of the total (0..1).
        gpu: GPU-kernel share.
        transfer: Data-movement (exposed) share.
        codec: GFC compress/decompress share.
    """

    circuit_name: str
    version: str
    total_seconds: float
    cpu: float
    gpu: float
    transfer: float
    codec: float

    @property
    def other(self) -> float:
        return max(0.0, 1.0 - self.cpu - self.gpu - self.transfer - self.codec)


def breakdown(result: TimedResult) -> Breakdown:
    """Compute the category shares of a timed run."""
    shares = result.breakdown()
    return Breakdown(
        circuit_name=result.circuit_name,
        version=result.version,
        total_seconds=result.total_seconds,
        cpu=shares["cpu"],
        gpu=shares["gpu"],
        transfer=shares["transfer"],
        codec=shares["codec"],
    )


def average_breakdown(breakdowns: list[Breakdown]) -> dict[str, float]:
    """Arithmetic mean of each share across runs (the paper's 'on average')."""
    if not breakdowns:
        return {"cpu": 0.0, "gpu": 0.0, "transfer": 0.0, "codec": 0.0}
    count = len(breakdowns)
    return {
        "cpu": sum(b.cpu for b in breakdowns) / count,
        "gpu": sum(b.gpu for b in breakdowns) / count,
        "transfer": sum(b.transfer for b in breakdowns) / count,
        "codec": sum(b.codec for b in breakdowns) / count,
    }
