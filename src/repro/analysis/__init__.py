"""Analysis utilities: breakdowns, rooflines, amplitude snapshots, tables."""

from repro.analysis.amplitudes import AmplitudeSnapshot, amplitude_snapshots
from repro.analysis.breakdown import Breakdown, average_breakdown, breakdown
from repro.analysis.roofline import RooflinePoint, roofline_ceiling, roofline_point
from repro.analysis.tables import format_normalized, format_table

__all__ = [
    "AmplitudeSnapshot",
    "Breakdown",
    "RooflinePoint",
    "amplitude_snapshots",
    "average_breakdown",
    "breakdown",
    "format_normalized",
    "format_table",
    "roofline_ceiling",
    "roofline_point",
]
