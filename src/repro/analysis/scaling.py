"""Distributed (multi-node) scaling projections.

The paper's related work simulates 45 qubits on 8,192 nodes (Haener &
Steiger, SC'17).  This extension projects Q-GPU's streaming model onto a
cluster: the state vector shards across node hosts, each node runs the
single-node Q-GPU pipeline over its shard, and gates on qubits above the
shard boundary require a pairwise shard exchange over the network.

The projection follows the standard distributed state-vector cost model:

* a gate on qubit ``q < n - log2(nodes)`` is node-local - every node
  streams its shard through its GPUs exactly as in the single-node model;
* a gate on a higher qubit pairs nodes ``(i, i ^ bit)``; each pair
  exchanges half a shard in each direction over the network before the
  local update (De Raedt et al.'s exchange scheme).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import QuantumCircuit
from repro.core.involvement import InvolvementTracker
from repro.errors import HardwareModelError
from repro.hardware.machine import Machine
from repro.hardware.specs import AMP_BYTES, GB, MachineSpec


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of Q-GPU nodes.

    Attributes:
        node: Per-node machine (host + GPUs + PCIe/NVLink).
        num_nodes: Power-of-two node count.
        network_bandwidth: Per-node injection bandwidth (bytes/s), e.g.
            12.5e9 for 100 Gb/s InfiniBand.
    """

    node: MachineSpec
    num_nodes: int
    network_bandwidth: float = 12.5 * GB

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.num_nodes & (self.num_nodes - 1):
            raise HardwareModelError("num_nodes must be a power of two")
        if self.network_bandwidth <= 0:
            raise HardwareModelError("network bandwidth must be positive")

    @property
    def node_bits(self) -> int:
        return self.num_nodes.bit_length() - 1

    def total_host_memory(self) -> int:
        return self.num_nodes * self.node.host_memory_bytes


@dataclass(frozen=True)
class ScalingEstimate:
    """Projected distributed execution of one circuit.

    Attributes:
        circuit_name: Workload.
        num_nodes: Cluster size used.
        local_seconds: Per-node streaming time (the slowest node).
        exchange_seconds: Network shard-exchange time.
        exchange_gates: Gates that crossed the shard boundary.
    """

    circuit_name: str
    num_nodes: int
    local_seconds: float
    exchange_seconds: float
    exchange_gates: int

    @property
    def total_seconds(self) -> float:
        return self.local_seconds + self.exchange_seconds


def max_cluster_qubits(cluster: ClusterSpec) -> int:
    """Largest register the cluster's aggregate host memory holds."""
    widest = 0
    for n in range(1, 60):
        if AMP_BYTES * 2.0**n * 1.05 <= cluster.total_host_memory():
            widest = n
    return widest


def estimate_distributed(
    circuit: QuantumCircuit,
    cluster: ClusterSpec,
    pruning: bool = True,
    compression_ratio: float = 1.0,
) -> ScalingEstimate:
    """Project a distributed Q-GPU run of ``circuit`` on ``cluster``.

    Per gate: the live amplitudes (involvement-pruned when ``pruning``)
    shard evenly; each node round-trips its live share through its GPUs
    (double-buffered, modelled by the per-node machine), and boundary
    gates add a pairwise half-shard exchange at the network bandwidth.

    Raises:
        HardwareModelError: If the state exceeds aggregate host memory.
    """
    n = circuit.num_qubits
    state_bytes = AMP_BYTES * 2.0**n
    if state_bytes * 1.05 > cluster.total_host_memory():
        raise HardwareModelError(
            f"{circuit.name}: needs {state_bytes / 2**30:.0f} GiB but the "
            f"cluster holds {cluster.total_host_memory() / 2**30:.0f} GiB"
        )
    machine = Machine(cluster.node)
    node_bits = cluster.node_bits
    shard_boundary = n - node_bits
    link_bw = cluster.node.link.bandwidth_per_direction
    num_gpus = machine.num_gpus

    tracker = InvolvementTracker(n)
    local_seconds = 0.0
    exchange_seconds = 0.0
    exchange_gates = 0

    for gate in circuit:
        if pruning:
            live = tracker.live_amplitudes_with(gate)
            tracker.involve(gate)
        else:
            live = 1 << n
        live_bytes = AMP_BYTES * live * compression_ratio
        per_node = live_bytes / cluster.num_nodes
        # Local streaming: duplex-overlapped round trip through the GPUs.
        per_gpu = per_node / num_gpus
        kernel = machine.gpu_compute_time(
            live / cluster.num_nodes / num_gpus, gate.num_qubits, gate.is_diagonal
        )
        local_seconds += max(per_gpu / link_bw, kernel)
        # Boundary gates exchange half of each node's live shard pairwise.
        if any(q >= shard_boundary for q in gate.qubits):
            exchange_gates += 1
            exchange_seconds += (per_node / 2) / cluster.network_bandwidth

    return ScalingEstimate(
        circuit_name=circuit.name,
        num_nodes=cluster.num_nodes,
        local_seconds=local_seconds,
        exchange_seconds=exchange_seconds,
        exchange_gates=exchange_gates,
    )
