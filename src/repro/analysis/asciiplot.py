"""Minimal ASCII line plots for experiment output.

Renders one or more named series as a character grid - enough to *see*
Fig. 9's involvement curves in the benchmark logs without any plotting
dependency.
"""

from __future__ import annotations

from typing import Sequence

#: Characters assigned to series, in order.
MARKS = "ox*+#@"


def line_plot(
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 12,
    y_max: float | None = None,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Plot each series as marks on a ``height x width`` grid.

    Series are resampled to ``width`` columns; the y-axis runs 0..``y_max``
    (default: the largest value).  Later series overwrite earlier ones
    where they collide.
    """
    if not series:
        return "(no data)"
    if y_max is None:
        y_max = max((max(s) for s in series.values() if len(s)), default=1.0)
    y_max = y_max or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        if not len(values):
            continue
        mark = MARKS[index % len(MARKS)]
        for column in range(width):
            position = column * (len(values) - 1) / max(1, width - 1)
            value = values[int(round(position))]
            row = height - 1 - int(
                min(height - 1, round(value / y_max * (height - 1)))
            )
            grid[row][column] = mark

    lines = []
    for row_index, row in enumerate(grid):
        label = f"{y_max * (height - 1 - row_index) / (height - 1):8.2g} |"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    if x_label:
        lines.append(" " * 10 + x_label)
    legend = "   ".join(
        f"{MARKS[i % len(MARKS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    if y_label:
        lines.insert(0, f"{y_label}")
    return "\n".join(lines)
