"""Host-capacity analysis, including compressed host storage.

The paper's runtime keeps state chunks on the host *in compressed form*
("The CPU keeps the compressed segments and copies the compressed segments
to the GPUs upon request", Section IV-D).  A consequence the paper does not
evaluate - and this extension does - is that compressible circuit families
fit **larger registers in the same host memory**: with a measured ratio
``r``, an ``n``-qubit simulation needs only ``r * 16 * 2^n`` bytes of host
DRAM plus working buffers.

This was the headline purpose of the lossy-compression work the paper
contrasts itself with (Wu et al., SC'19); Q-GPU's lossless codec recovers
part of the same capacity win at zero fidelity cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.specs import AMP_BYTES, MachineSpec

#: Fraction of host memory reserved for the runtime, staging buffers and
#: per-chunk metadata (matches the executor's 5% slack).
HOST_SLACK = 1.05


def host_footprint_bytes(num_qubits: int, compression_ratio: float = 1.0) -> float:
    """Host bytes to hold an ``n``-qubit state at a given GFC ratio.

    ``compression_ratio`` is compressed-size over raw-size and must be
    strictly positive: ratios below 1 mean the codec shrinks the state,
    1.0 means raw storage, and ratios above 1 model *expansion* (an
    adversarial stream that inflates under GFC, or codec framing overhead
    on incompressible data).  Earlier revisions silently assumed
    ``ratio <= 1``; expansion is now priced honestly instead of rejected.

    Raises:
        ValueError: If ``compression_ratio <= 0`` (a non-positive size is
            meaningless and used to yield absurd negative/zero footprints)
            or ``num_qubits`` is negative.
    """
    if compression_ratio <= 0:
        raise ValueError(
            f"compression_ratio must be > 0 (got {compression_ratio}); "
            "ratios < 1 compress, ratios > 1 expand"
        )
    if num_qubits < 0:
        raise ValueError(f"num_qubits must be >= 0, got {num_qubits}")
    return AMP_BYTES * 2.0**num_qubits * compression_ratio * HOST_SLACK


def fits_host(
    num_qubits: int, machine: MachineSpec, compression_ratio: float = 1.0
) -> bool:
    """Whether the (possibly compressed) state fits this host's DRAM."""
    return host_footprint_bytes(num_qubits, compression_ratio) <= machine.host_memory_bytes


def max_qubits(
    machine: MachineSpec, compression_ratio: float = 1.0, limit: int = 48
) -> int:
    """Largest register the host can hold at the given ratio."""
    widest = 0
    for n in range(1, limit + 1):
        if fits_host(n, machine, compression_ratio):
            widest = n
    return widest


@dataclass(frozen=True)
class CapacityGain:
    """Capacity win from compressed host storage for one circuit family.

    Attributes:
        family: Benchmark family.
        ratio: Measured GFC ratio used.
        qubits_uncompressed: Max width with raw host storage.
        qubits_compressed: Max width with compressed host storage.
    """

    family: str
    ratio: float
    qubits_uncompressed: int
    qubits_compressed: int

    @property
    def extra_qubits(self) -> int:
        return self.qubits_compressed - self.qubits_uncompressed


def capacity_gain(
    family: str, machine: MachineSpec, ratio: float
) -> CapacityGain:
    """Compute the compressed-storage capacity gain for one family."""
    return CapacityGain(
        family=family,
        ratio=ratio,
        qubits_uncompressed=max_qubits(machine, 1.0),
        qubits_compressed=max_qubits(machine, ratio),
    )
