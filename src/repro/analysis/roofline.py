"""GPU roofline analysis (paper Fig. 15, Section V-B).

A roofline places each run at ``(arithmetic intensity, achieved FLOPS)``
under the device ceiling ``min(peak FLOPS, AI x memory bandwidth)``.  The
paper's observations to reproduce:

* QCS is memory-bound (every point sits under the bandwidth slope),
* runs that fit in GPU memory (<= 29 qubits) achieve FLOPS near the
  bandwidth-bound ceiling,
* beyond GPU memory the Baseline collapses to very low FLOPS, the Naive
  version recovers some, and Q-GPU achieves far more.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.executor import TimedResult
from repro.hardware.specs import GpuSpec


@dataclass(frozen=True)
class RooflinePoint:
    """One run in roofline coordinates.

    Attributes:
        label: Display label (e.g. ``"qft_32/Baseline"``).
        arithmetic_intensity: GPU FLOPs per GPU DRAM byte.
        achieved_flops: GPU FLOPs divided by *total* execution seconds
            (application-level throughput, as the paper plots).
        ceiling_flops: Device ceiling at this intensity.
    """

    label: str
    arithmetic_intensity: float
    achieved_flops: float
    ceiling_flops: float

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the roofline ceiling."""
        if self.ceiling_flops == 0:
            return 0.0
        return self.achieved_flops / self.ceiling_flops

    @property
    def memory_bound(self) -> bool:
        """True when the bandwidth slope (not peak FLOPS) is the ceiling."""
        return self.achieved_flops <= self.ceiling_flops


def roofline_ceiling(gpu: GpuSpec, arithmetic_intensity: float) -> float:
    """``min(peak, AI x bandwidth)`` for one device."""
    return min(gpu.fp64_flops, arithmetic_intensity * gpu.mem_bandwidth)


def roofline_point(result: TimedResult, gpu: GpuSpec) -> RooflinePoint:
    """Place one timed run on the device's roofline."""
    if result.gpu_bytes_touched > 0:
        intensity = result.gpu_flops / result.gpu_bytes_touched
    else:
        intensity = 0.0
    achieved = (
        result.gpu_flops / result.total_seconds if result.total_seconds else 0.0
    )
    return RooflinePoint(
        label=f"{result.circuit_name}/{result.version}",
        arithmetic_intensity=intensity,
        achieved_flops=achieved,
        ceiling_flops=roofline_ceiling(gpu, intensity),
    )
