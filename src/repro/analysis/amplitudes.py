"""Amplitude-distribution snapshots (paper Fig. 7).

Fig. 7 plots the real and imaginary parts of every amplitude of
``hchain_10`` after 0, 30, 60 and 90 operations, showing the state filling
in from mostly-zero to dense as qubits become involved.  These helpers
produce the same snapshots for any circuit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.errors import SimulationError
from repro.statevector.state import StateVector


@dataclass(frozen=True)
class AmplitudeSnapshot:
    """State statistics after a prefix of the circuit.

    Attributes:
        gates_applied: Length of the executed prefix.
        amplitudes: The full state vector at that point (copy).
        nonzero_fraction: Fraction of amplitudes with magnitude above 1e-14.
        involved_qubits: Distinct qubits touched by the prefix.
    """

    gates_applied: int
    amplitudes: np.ndarray
    nonzero_fraction: float
    involved_qubits: int


def amplitude_snapshots(
    circuit: QuantumCircuit, checkpoints: list[int]
) -> list[AmplitudeSnapshot]:
    """Simulate ``circuit`` and snapshot the state at each checkpoint.

    Args:
        circuit: Circuit at a functionally tractable width.
        checkpoints: Gate counts at which to snapshot (``0`` = initial
            state); must be non-decreasing and within the circuit length.

    Returns:
        One snapshot per checkpoint, in order.
    """
    if any(b < a for a, b in zip(checkpoints, checkpoints[1:])):
        raise SimulationError("checkpoints must be non-decreasing")
    if checkpoints and checkpoints[-1] > len(circuit):
        raise SimulationError(
            f"checkpoint {checkpoints[-1]} exceeds circuit length {len(circuit)}"
        )
    state = StateVector(circuit.num_qubits)
    involved: set[int] = set()
    snapshots: list[AmplitudeSnapshot] = []
    position = 0
    for checkpoint in checkpoints:
        while position < checkpoint:
            gate = circuit[position]
            state.apply(gate)
            involved.update(gate.qubits)
            position += 1
        snapshots.append(
            AmplitudeSnapshot(
                gates_applied=position,
                amplitudes=state.amplitudes.copy(),
                nonzero_fraction=state.nonzero_fraction(),
                involved_qubits=len(involved),
            )
        )
    return snapshots
