"""ASCII Gantt rendering of event-engine timelines (paper Fig. 6).

Renders each resource (H2D stream, GPU compute, D2H stream, CPU) as a row
of time buckets so the overlap structure of each execution version is
visible in plain text - the reproduction of the paper's Fig. 6 timeline
illustration.
"""

from __future__ import annotations

from repro.hardware.events import TimelineResult


def gantt(
    result: TimelineResult,
    resources: list[str] | None = None,
    width: int = 72,
) -> str:
    """Render a timeline as one text row per resource.

    Each character cell covers ``makespan / width`` seconds; a cell is
    filled (``#``) when the resource is busy for the majority of the cell,
    half-filled (``+``) when partially busy, ``.`` when idle.
    """
    if result.makespan <= 0:
        return "(empty timeline)"
    if resources is None:
        resources = sorted({r.task.resource for r in result.records.values()})
    cell = result.makespan / width
    lines = []
    for resource in resources:
        busy = [0.0] * width
        for record in result.records.values():
            if record.task.resource != resource:
                continue
            first = int(record.start / cell)
            last = min(width - 1, int(record.finish / cell))
            for index in range(first, last + 1):
                bucket_start = index * cell
                bucket_end = bucket_start + cell
                overlap = min(record.finish, bucket_end) - max(record.start, bucket_start)
                busy[index] += max(0.0, overlap)
        row = "".join(
            "#" if b > 0.5 * cell else ("+" if b > 0.05 * cell else ".")
            for b in busy
        )
        lines.append(f"{resource:>6} |{row}|")
    lines.append(f"{'':>6}  0{'':{width - 10}}t={result.makespan:.3g}s")
    return "\n".join(lines)
