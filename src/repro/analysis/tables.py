"""Plain-text table rendering for experiment reports.

The benchmark harness prints each paper table/figure as an aligned ASCII
table; this keeps the experiment output diffable and dependency-free.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    Floats render with four significant digits; everything else with
    ``str``.  Columns are right-aligned except the first.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))

    def line(cells: Sequence[str]) -> str:
        parts = []
        for column, value in enumerate(cells):
            if column == 0:
                parts.append(value.ljust(widths[column]))
            else:
                parts.append(value.rjust(widths[column]))
        return "  ".join(parts)

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def format_normalized(value: float) -> str:
    """Render a baseline-normalized time, e.g. ``0.281x``."""
    return f"{value:.3f}x"
