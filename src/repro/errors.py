"""Exception hierarchy for the Q-GPU reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CircuitError(ReproError):
    """Raised for malformed circuits or invalid gate construction."""


class QasmError(ReproError):
    """Raised when OpenQASM text cannot be parsed or emitted."""


class SimulationError(ReproError):
    """Raised when a state-vector simulation cannot be performed."""


class HardwareModelError(ReproError):
    """Raised for inconsistent hardware specifications or schedules."""


class CompressionError(ReproError):
    """Raised when the GFC codec receives an undecodable stream."""


class SchedulingError(ReproError):
    """Raised when an execution schedule violates a resource invariant."""


class FaultInjectionError(ReproError):
    """Raised when an injected fault exhausts its recovery policy.

    Examples: a chunk transfer that stays corrupted after the configured
    number of retries, or an allocation that keeps hitting injected OOM
    after chunk-size degradation bottomed out.
    """


class IntegrityError(ReproError):
    """Raised when an integrity guard detects corrupted state.

    Covers per-chunk CRC32 mismatches on transfer receive, payload
    checksum mismatches in persisted state files, and norm-conservation
    violations after a gate layer.
    """


class CheckpointError(ReproError):
    """Raised when a checkpoint cannot be written, read, or resumed from."""


class ObservabilityError(ReproError):
    """Raised for invalid tracing or metrics operations.

    Covers spans tagged with a stage outside the taxonomy, unreadable or
    structurally invalid trace files, and wellformedness violations found
    by the trace validator.
    """


class AnalysisError(ReproError):
    """Raised when a cost/feature analysis cannot price a request.

    Covers asking the DES timed model (which prices the dense chunked
    engine only) for a circuit the planner routed to another backend,
    and planning a circuit no backend can feasibly execute.  Raised
    instead of silently returning a wrong-engine estimate.
    """


class JobCancelled(ReproError):
    """Raised inside a worker when its cancellation token fires.

    Cooperative cancellation: the simulator's gate loop polls the token
    and raises this between gates, so a RUNNING job can actually be
    stopped - by a user ``cancel()``, by the watchdog reaping a stalled
    worker, or by a deadline kill.  ``kind`` records who cancelled
    (``user`` / ``deadline`` / ``stall`` / ``shutdown``) so the service
    can route the outcome: user cancels become CANCELLED, watchdog kills
    become FAILED (and retry per policy).
    """

    def __init__(self, message: str, kind: str = "user") -> None:
        super().__init__(message)
        self.kind = kind


class ServiceError(ReproError):
    """Raised for invalid batch-service operations.

    Covers illegal job state transitions, malformed job manifests, and
    corrupt job journals.
    """


class AdmissionError(ServiceError):
    """Raised when a job can never be admitted.

    A job whose estimated resident footprint exceeds the service's entire
    byte budget is rejected outright rather than queued forever.
    """


class JobNotFound(ServiceError):
    """Raised when a job id is absent from the store or journal."""
