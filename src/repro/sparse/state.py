"""Sparse (hash-map) state-vector simulation.

Stores only non-zero amplitudes in a dictionary keyed by basis index.
Where the paper's involvement pruning (Algorithm 1) uses a *structural*
upper bound on the non-zero set - cheap enough for a GPU scheduler - this
engine tracks the *exact* support, which makes it:

* the efficient engine for support-sparse workloads (BV, GHZ, Grover-style
  states with few amplitudes), and
* the ground truth for the "involvement-bound tightness" extension
  experiment: how much of what Q-GPU streams is actually zero-valued but
  structurally live?

Complexity per gate is O(support x 2^k): dense-support circuits degrade to
(slow) dense simulation, which is exactly the trade the analysis quantifies.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.errors import SimulationError

#: Amplitudes with magnitude below this are dropped from the support.
EPSILON = 1e-14


class SparseState:
    """Dictionary-of-amplitudes state, initially ``|0...0>``.

    Attributes:
        num_qubits: Register width.
        amplitudes: ``{basis index: amplitude}`` over the support.
    """

    def __init__(self, num_qubits: int) -> None:
        if num_qubits <= 0:
            raise SimulationError("num_qubits must be positive")
        self.num_qubits = num_qubits
        self.amplitudes: dict[int, complex] = {0: 1.0 + 0.0j}

    # -- queries -----------------------------------------------------------

    @property
    def support_size(self) -> int:
        """Number of stored (non-zero) amplitudes."""
        return len(self.amplitudes)

    def norm(self) -> float:
        return math.sqrt(sum(abs(a) ** 2 for a in self.amplitudes.values()))

    def to_dense(self) -> np.ndarray:
        if self.num_qubits > 24:
            raise SimulationError("to_dense beyond 24 qubits is not sensible")
        out = np.zeros(1 << self.num_qubits, dtype=np.complex128)
        for index, amplitude in self.amplitudes.items():
            out[index] = amplitude
        return out

    def amplitude(self, basis_index: int) -> complex:
        return self.amplitudes.get(basis_index, 0.0 + 0.0j)

    # -- evolution ------------------------------------------------------------

    def apply(self, gate: Gate) -> "SparseState":
        """Apply one gate over the support."""
        for q in gate.qubits:
            if q >= self.num_qubits:
                raise SimulationError(f"gate {gate} exceeds register width")
        if gate.is_diagonal:
            self._apply_diagonal(gate)
            return self
        self._apply_general(gate)
        return self

    def _apply_diagonal(self, gate: Gate) -> None:
        diag = np.diag(gate.matrix())
        qubits = gate.qubits
        updated: dict[int, complex] = {}
        for index, amplitude in self.amplitudes.items():
            local = 0
            for position, q in enumerate(qubits):
                local |= (index >> q & 1) << position
            value = amplitude * diag[local]
            if abs(value) > EPSILON:
                updated[index] = value
        self.amplitudes = updated

    def _apply_general(self, gate: Gate) -> None:
        matrix = gate.matrix()
        qubits = gate.qubits
        k = len(qubits)
        clear_mask = 0
        for q in qubits:
            clear_mask |= 1 << q

        # Group support members by their "base" (gate-qubit bits cleared);
        # each group is one independent 2^k-dimensional local vector.
        groups: dict[int, dict[int, complex]] = {}
        for index, amplitude in self.amplitudes.items():
            base = index & ~clear_mask
            local = 0
            for position, q in enumerate(qubits):
                local |= (index >> q & 1) << position
            groups.setdefault(base, {})[local] = amplitude

        updated: dict[int, complex] = {}
        for base, members in groups.items():
            local_in = np.zeros(1 << k, dtype=np.complex128)
            for local, amplitude in members.items():
                local_in[local] = amplitude
            local_out = matrix @ local_in
            for local in range(1 << k):
                value = local_out[local]
                if abs(value) <= EPSILON:
                    continue
                index = base
                for position, q in enumerate(qubits):
                    if local >> position & 1:
                        index |= 1 << q
                updated[index] = value
        self.amplitudes = updated

    def run(self, circuit: QuantumCircuit) -> "SparseState":
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError("circuit width mismatch")
        for gate in circuit:
            self.apply(gate)
        return self

    def support_trace(self, circuit: QuantumCircuit) -> list[int]:
        """Support size after each gate (resets to ``|0...0>`` first)."""
        self.amplitudes = {0: 1.0 + 0.0j}
        trace = []
        for gate in circuit:
            self.apply(gate)
            trace.append(self.support_size)
        return trace


def simulate_sparse(circuit: QuantumCircuit) -> SparseState:
    """Run ``circuit`` from ``|0...0>`` on the sparse engine."""
    return SparseState(circuit.num_qubits).run(circuit)
