"""Sparse (exact-support) state-vector simulation."""

from repro.sparse.state import EPSILON, SparseState, simulate_sparse

__all__ = ["EPSILON", "SparseState", "simulate_sparse"]
