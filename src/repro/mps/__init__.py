"""Matrix-product-state (tensor network) simulation (paper Section II-B)."""

from repro.mps.state import MpsState, simulate_mps

__all__ = ["MpsState", "simulate_mps"]
