"""Matrix-product-state (tensor network) simulation - Section II-B's third
paradigm (Equation 9).

An ``n``-qubit state is a chain of rank-3 tensors ``A_k`` with shape
``(chi_left, 2, chi_right)``; the amplitude of bit string ``b`` is the
matrix product ``A_0[b_0] A_1[b_1] ... A_{n-1}[b_{n-1}]`` (Equation 9).
Bond dimensions grow with entanglement; each two-site gate is applied by
merging neighbours, contracting the 4x4 unitary, and splitting back with an
SVD truncated to ``max_bond`` singular values above ``cutoff``.

Non-adjacent two-qubit gates route through an explicit swap network, and
three-qubit library gates decompose first (``repro.circuits.passes``), so
the full benchmark gate set is supported.  With ``max_bond=None`` (no
truncation) the engine is exact and the test suite checks it bit-close
against the dense simulator; with a finite bond it reproduces the
compress-to-``O(n d^2)`` behaviour the paper describes.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.circuits.passes import decompose
from repro.errors import SimulationError


class MpsState:
    """A matrix product state over ``num_qubits`` qubits, initially
    ``|0...0>``.

    Args:
        num_qubits: Chain length.
        max_bond: Largest bond dimension kept by SVD truncation
            (``None`` = unbounded, exact simulation).
        cutoff: Singular values below this are always discarded.

    Attributes:
        tensors: ``tensors[k]`` has shape ``(chi_k, 2, chi_{k+1})``.
        truncation_error: Accumulated sum of discarded squared singular
            values (0 for exact runs).
    """

    def __init__(
        self, num_qubits: int, max_bond: int | None = None, cutoff: float = 1e-12
    ) -> None:
        if num_qubits <= 0:
            raise SimulationError("num_qubits must be positive")
        if max_bond is not None and max_bond < 1:
            raise SimulationError("max_bond must be >= 1")
        self.num_qubits = num_qubits
        self.max_bond = max_bond
        self.cutoff = cutoff
        self.truncation_error = 0.0
        self.tensors: list[np.ndarray] = []
        for _ in range(num_qubits):
            tensor = np.zeros((1, 2, 1), dtype=np.complex128)
            tensor[0, 0, 0] = 1.0
            self.tensors.append(tensor)

    # -- queries ------------------------------------------------------------

    def bond_dimensions(self) -> list[int]:
        """Bond sizes between neighbouring sites (length ``n - 1``)."""
        return [self.tensors[k].shape[2] for k in range(self.num_qubits - 1)]

    def max_bond_dimension(self) -> int:
        return max(self.bond_dimensions(), default=1)

    def to_dense(self) -> np.ndarray:
        """Contract into the full ``2^n`` vector (small widths only).

        Index convention matches the dense engine: qubit 0 is the least
        significant bit of the amplitude index.
        """
        if self.num_qubits > 24:
            raise SimulationError("to_dense beyond 24 qubits is not sensible")
        contracted = self.tensors[0]  # (1, 2, chi)
        for k in range(1, self.num_qubits):
            contracted = np.tensordot(contracted, self.tensors[k], axes=([2], [0]))
            shape = contracted.shape
            contracted = contracted.reshape(1, shape[1] * shape[2], shape[3])
        vector = contracted.reshape(-1)
        # The merged physical index ordering is site-major (site 0 most
        # significant within the merge above); reorder to LSB-first.
        tensor = vector.reshape((2,) * self.num_qubits)
        return np.ascontiguousarray(tensor.transpose(*reversed(range(self.num_qubits)))).reshape(-1)

    def amplitude(self, basis_index: int) -> complex:
        """Amplitude of one basis state via the Equation-9 matrix product."""
        if not 0 <= basis_index < (1 << self.num_qubits):
            raise SimulationError(f"basis index {basis_index} out of range")
        product = self.tensors[0][:, basis_index & 1, :]
        for k in range(1, self.num_qubits):
            bit = basis_index >> k & 1
            product = product @ self.tensors[k][:, bit, :]
        return complex(product[0, 0])

    def norm(self) -> float:
        """Euclidean norm by transfer-matrix contraction (O(n chi^3))."""
        env = np.ones((1, 1), dtype=np.complex128)
        for tensor in self.tensors:
            # env(l, l') . A(l, p, r) . conj(A)(l', p, r') -> (r, r')
            temp = np.tensordot(env, tensor, axes=([0], [0]))  # (l', p, r)
            env = np.tensordot(tensor.conj(), temp, axes=([0, 1], [0, 1]))
        return float(np.sqrt(abs(env[0, 0])))

    # -- gate application ------------------------------------------------------

    def apply(self, gate: Gate) -> "MpsState":
        """Apply one library gate (decomposing 3-qubit gates first)."""
        if any(q >= self.num_qubits for q in gate.qubits):
            raise SimulationError(f"gate {gate} exceeds register width")
        if gate.num_qubits == 1:
            self._apply_single(gate.matrix(), gate.qubits[0])
        elif gate.num_qubits == 2:
            self._apply_two(gate)
        else:
            shim = QuantumCircuit(self.num_qubits)
            shim.append(gate)
            for lowered in decompose(shim):
                self.apply(lowered)
        return self

    def run(self, circuit: QuantumCircuit) -> "MpsState":
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError("circuit width mismatch")
        for gate in circuit:
            self.apply(gate)
        return self

    def _apply_single(self, matrix: np.ndarray, site: int) -> None:
        self.tensors[site] = np.einsum(
            "ab,lbr->lar", matrix, self.tensors[site], optimize=True
        )

    def _apply_two(self, gate: Gate) -> None:
        a, b = gate.qubits
        if abs(a - b) == 1:
            self._apply_adjacent(gate.matrix(), min(a, b), first_is_low=(a < b))
            return
        # Route the higher qubit next to the lower with swaps, apply, undo.
        low, high = (a, b) if a < b else (b, a)
        swap = Gate("swap", (0, 1)).matrix()
        # Swaps at sites (high-1, high), (high-2, high-1), ..., (low+1,
        # low+2) walk the high qubit down to site low+1.
        route = list(range(high - 1, low, -1))
        for site in route:
            self._apply_adjacent(swap, site, first_is_low=True)
        self._apply_adjacent(gate.matrix(), low, first_is_low=(a < b))
        for site in reversed(route):
            self._apply_adjacent(swap, site, first_is_low=True)

    def _apply_adjacent(
        self, matrix: np.ndarray, site: int, first_is_low: bool
    ) -> None:
        """Apply a 4x4 unitary on sites ``(site, site+1)``.

        ``first_is_low``: gate qubit 0 (the matrix's least significant
        axis) sits on ``site``; otherwise on ``site + 1``.
        """
        left, right = self.tensors[site], self.tensors[site + 1]
        chi_l, _, _ = left.shape
        _, _, chi_r = right.shape
        theta = np.tensordot(left, right, axes=([2], [0]))  # (l, p0, p1, r)

        # Reshape the gate so its axes line up with (p0', p1', p0, p1):
        # matrix index bit 0 = gate qubit 0.  numpy reshape makes the first
        # axis the most significant bit = gate qubit 1.
        gate4 = matrix.reshape(2, 2, 2, 2)  # (out_q1, out_q0, in_q1, in_q0)
        if first_is_low:
            # p0 carries gate qubit 0.
            gate_nd = gate4.transpose(1, 0, 3, 2)  # (out_q0, out_q1, in_q0, in_q1)
        else:
            gate_nd = gate4  # p0 carries gate qubit 1 already

        theta = np.einsum("abcd,lcdr->labr", gate_nd, theta, optimize=True)
        merged = theta.reshape(chi_l * 2, 2 * chi_r)
        u, s, vh = np.linalg.svd(merged, full_matrices=False)

        keep = s > self.cutoff
        if self.max_bond is not None:
            keep &= np.arange(s.size) < self.max_bond
        kept = max(1, int(keep.sum()))
        discarded = s[kept:] if kept < s.size else s[:0]
        self.truncation_error += float(np.sum(discarded**2))

        u = u[:, :kept]
        s = s[:kept]
        vh = vh[:kept, :]
        self.tensors[site] = u.reshape(chi_l, 2, kept)
        self.tensors[site + 1] = (s[:, None] * vh).reshape(kept, 2, chi_r)


    # -- observables -------------------------------------------------------

    def expectation_pauli(self, paulis: dict[int, str]) -> float:
        """``<psi| P |psi>`` for a tensor product of single-qubit Paulis.

        Contracts one transfer matrix per site in ``O(n chi^3)`` - no
        ``2^n`` densification.  ``paulis`` maps qubit -> ``"X"|"Y"|"Z"``
        (identity sites omitted).
        """
        import numpy as np  # local alias for clarity in the contraction

        operators = {
            "X": np.array([[0, 1], [1, 0]], dtype=np.complex128),
            "Y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
            "Z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
        }
        for qubit, label in paulis.items():
            if label not in operators:
                raise SimulationError(f"bad Pauli label {label!r}")
            if not 0 <= qubit < self.num_qubits:
                raise SimulationError(f"qubit {qubit} out of range")
        env = np.ones((1, 1), dtype=np.complex128)
        for site, tensor in enumerate(self.tensors):
            op = operators.get(paulis.get(site, "I"))
            acted = (
                tensor
                if op is None
                else np.einsum("ab,lbr->lar", op, tensor, optimize=True)
            )
            temp = np.tensordot(env, acted, axes=([1], [0]))  # (l', p, r)
            env = np.tensordot(tensor.conj(), temp, axes=([0, 1], [0, 1]))
        return float(np.real(env[0, 0]))

    # -- sampling ---------------------------------------------------------

    def _right_environments(self) -> list[np.ndarray]:
        """``R[k]``: the density environment right of site ``k``.

        ``R[n]`` is the scalar 1; ``R[k] = sum_p A_k[:,p,:] R[k+1]
        A_k[:,p,:]^dagger`` - the matrix whose quadratic form gives the
        squared norm of any left-boundary vector continued to the right.
        """
        n = self.num_qubits
        environments: list[np.ndarray] = [None] * (n + 1)  # type: ignore[list-item]
        environments[n] = np.ones((1, 1), dtype=np.complex128)
        for k in range(n - 1, -1, -1):
            tensor = self.tensors[k]
            right = environments[k + 1]
            env = np.zeros((tensor.shape[0], tensor.shape[0]), dtype=np.complex128)
            for p in range(2):
                slab = tensor[:, p, :]
                env += slab @ right @ slab.conj().T
            environments[k] = env
        return environments

    def sample(self, shots: int, rng: np.random.Generator | None = None) -> dict[int, int]:
        """Draw basis-state samples without materialising ``2^n`` amplitudes.

        Classic sequential MPS sampling: sweep the chain once per shot,
        conditioning each qubit's outcome probability on the prefix via the
        left boundary vector and the precomputed right environments.
        Cost: ``O(n chi^3)`` once plus ``O(shots n chi^2)``.
        """
        if shots <= 0:
            raise SimulationError(f"shots must be positive, got {shots}")
        if rng is None:
            rng = np.random.default_rng()
        environments = self._right_environments()
        total = float(np.real(environments[0][0, 0]))
        if total <= 0:
            raise SimulationError("state has zero norm")
        counts: dict[int, int] = {}
        for _ in range(shots):
            boundary = np.ones((1,), dtype=np.complex128)
            weight = total
            outcome = 0
            for k in range(self.num_qubits):
                tensor = self.tensors[k]
                right = environments[k + 1]
                branch0 = boundary @ tensor[:, 0, :]
                # Quadratic form of the row vector: sum_suffix |b M|^2
                # = b R b^dagger (R is Hermitian but not symmetric).
                p0 = float(np.real(branch0 @ right @ branch0.conj()))
                probability_zero = min(1.0, max(0.0, p0 / weight))
                if rng.random() < probability_zero:
                    boundary = branch0
                    weight = p0
                else:
                    boundary = boundary @ tensor[:, 1, :]
                    weight = max(weight - p0, 1e-300)
                    outcome |= 1 << k
            counts[outcome] = counts.get(outcome, 0) + 1
        return counts


def simulate_mps(
    circuit: QuantumCircuit, max_bond: int | None = None, cutoff: float = 1e-12
) -> MpsState:
    """Run ``circuit`` from ``|0...0>`` on the MPS engine."""
    return MpsState(circuit.num_qubits, max_bond=max_bond, cutoff=cutoff).run(circuit)
