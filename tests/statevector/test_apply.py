"""Kernel tests: every specialised gate kernel must equal the brute-force
full-unitary application (kron with identities)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.gates import GATE_SPECS, Gate
from repro.errors import SimulationError
from repro.statevector.apply import (
    apply_controlled,
    apply_diagonal,
    apply_gate,
    apply_matrix,
)


def brute_force_apply(state: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Apply a gate by building the full 2^n x 2^n unitary."""
    matrix = gate.matrix()
    k = len(gate.qubits)
    full = np.zeros((1 << num_qubits, 1 << num_qubits), dtype=np.complex128)
    for column in range(1 << num_qubits):
        local_in = 0
        for position, q in enumerate(gate.qubits):
            local_in |= (column >> q & 1) << position
        for local_out in range(1 << k):
            amplitude = matrix[local_out, local_in]
            if amplitude == 0:
                continue
            row = column
            for position, q in enumerate(gate.qubits):
                bit = local_out >> position & 1
                row = (row & ~(1 << q)) | (bit << q)
            full[row, column] += amplitude
    return full @ state


def random_state(num_qubits: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    state = rng.normal(size=1 << num_qubits) + 1j * rng.normal(size=1 << num_qubits)
    return (state / np.linalg.norm(state)).astype(np.complex128)


ALL_GATES = sorted(GATE_SPECS)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("name", ALL_GATES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_every_gate_on_random_qubits(self, name: str, seed: int) -> None:
        spec = GATE_SPECS[name]
        num_qubits = 5
        rng = np.random.default_rng(seed + hash(name) % 1000)
        qubits = tuple(
            int(q) for q in rng.choice(num_qubits, size=spec.num_qubits, replace=False)
        )
        params = tuple(float(x) for x in rng.uniform(-np.pi, np.pi, spec.num_params))
        gate = Gate(name, qubits, params)
        state = random_state(num_qubits, seed)
        expected = brute_force_apply(state, gate, num_qubits)
        actual = state.copy()
        apply_gate(actual, gate)
        np.testing.assert_allclose(actual, expected, atol=1e-12)

    @given(
        qubit=st.integers(0, 3),
        seed=st.integers(0, 100),
    )
    def test_single_qubit_general_matrix(self, qubit: int, seed: int) -> None:
        rng = np.random.default_rng(seed)
        # Random unitary via QR decomposition.
        raw = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        unitary, _ = np.linalg.qr(raw)
        state = random_state(4, seed)
        expected = brute_force_apply_matrix(state, unitary, (qubit,), 4)
        actual = state.copy()
        apply_matrix(actual, unitary, (qubit,))
        np.testing.assert_allclose(actual, expected, atol=1e-12)

    def test_two_qubit_matrix_both_orders(self) -> None:
        state = random_state(3, 9)
        rng = np.random.default_rng(5)
        raw = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        unitary, _ = np.linalg.qr(raw)
        for qubits in [(0, 2), (2, 0), (1, 2), (2, 1)]:
            expected = brute_force_apply_matrix(state, unitary, qubits, 3)
            actual = state.copy()
            apply_matrix(actual, unitary, qubits)
            np.testing.assert_allclose(actual, expected, atol=1e-12, err_msg=str(qubits))


def brute_force_apply_matrix(
    state: np.ndarray, matrix: np.ndarray, qubits: tuple[int, ...], num_qubits: int
) -> np.ndarray:
    k = len(qubits)
    out = np.zeros_like(state)
    for column in range(state.size):
        local_in = 0
        for position, q in enumerate(qubits):
            local_in |= (column >> q & 1) << position
        for local_out in range(1 << k):
            row = column
            for position, q in enumerate(qubits):
                bit = local_out >> position & 1
                row = (row & ~(1 << q)) | (bit << q)
            out[row] += matrix[local_out, local_in] * state[column]
    return out


class TestSpecialisedKernels:
    def test_diagonal_kernel_matches_general(self) -> None:
        state = random_state(4, 3)
        gate = Gate("cp", (1, 3), (0.7,))
        general = state.copy()
        apply_matrix(general, gate.matrix(), gate.qubits)
        fast = state.copy()
        apply_diagonal(fast, np.diag(gate.matrix()).copy(), gate.qubits)
        np.testing.assert_allclose(fast, general, atol=1e-12)

    def test_controlled_kernel_matches_general(self) -> None:
        state = random_state(4, 4)
        gate = Gate("cx", (2, 0))
        general = state.copy()
        apply_matrix(general, gate.matrix(), gate.qubits)
        fast = state.copy()
        apply_controlled(
            fast, np.array([[0, 1], [1, 0]], dtype=np.complex128), (2,), (0,)
        )
        np.testing.assert_allclose(fast, general, atol=1e-12)

    def test_norm_preserved_by_all_kernels(self) -> None:
        state = random_state(5, 8)
        for gate in [Gate("h", (2,)), Gate("cz", (0, 4)), Gate("ccx", (1, 2, 3))]:
            apply_gate(state, gate)
        assert np.linalg.norm(state) == pytest.approx(1.0, abs=1e-12)


class TestErrorPaths:
    def test_non_power_of_two_state_rejected(self) -> None:
        with pytest.raises(SimulationError, match="power of two"):
            apply_matrix(np.zeros(3, dtype=np.complex128), np.eye(2), (0,))

    def test_qubit_out_of_range_rejected(self) -> None:
        with pytest.raises(SimulationError, match="out of range"):
            apply_matrix(np.zeros(4, dtype=np.complex128), np.eye(2), (2,))

    def test_matrix_shape_mismatch_rejected(self) -> None:
        with pytest.raises(SimulationError, match="does not match"):
            apply_matrix(np.zeros(4, dtype=np.complex128), np.eye(4), (0,))

    def test_diagonal_shape_mismatch_rejected(self) -> None:
        with pytest.raises(SimulationError, match="does not match"):
            apply_diagonal(np.zeros(4, dtype=np.complex128), np.ones(4), (0,))

    def test_control_out_of_range_rejected(self) -> None:
        with pytest.raises(SimulationError, match="out of range"):
            apply_controlled(
                np.zeros(4, dtype=np.complex128), np.eye(2), (5,), (0,)
            )

    def test_empty_state_rejected(self) -> None:
        empty = np.zeros(0, dtype=np.complex128)
        with pytest.raises(SimulationError, match="empty"):
            apply_gate(empty, Gate("x", (0,)))
        with pytest.raises(SimulationError, match="empty"):
            apply_matrix(empty, np.eye(2), (0,))
