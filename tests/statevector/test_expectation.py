"""Tests for Pauli-string observables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.errors import SimulationError
from repro.statevector.expectation import (
    Observable,
    PauliString,
    apply_pauli,
    expectation_pauli,
    ising_energy,
)
from repro.statevector.state import StateVector, simulate


class TestPauliString:
    def test_parse_and_str(self) -> None:
        string = PauliString.parse("Z0 X3 Y1")
        assert string.support == (0, 1, 3)
        assert str(string) == "Z0 Y1 X3"
        assert string.min_width() == 4

    def test_identity_string(self) -> None:
        assert str(PauliString(())) == "I"
        assert PauliString(()).min_width() == 0

    def test_validation(self) -> None:
        with pytest.raises(SimulationError):
            PauliString(((0, "Q"),))
        with pytest.raises(SimulationError):
            PauliString(((0, "Z"), (0, "X")))
        with pytest.raises(SimulationError):
            PauliString.parse("Zx")


class TestExpectations:
    def test_z_on_basis_states(self) -> None:
        zero = StateVector(2).amplitudes
        assert expectation_pauli(zero, PauliString.parse("Z0")) == pytest.approx(1.0)
        one = simulate(QuantumCircuit(2).x(1)).amplitudes
        assert expectation_pauli(one, PauliString.parse("Z1")) == pytest.approx(-1.0)
        assert expectation_pauli(one, PauliString.parse("Z0")) == pytest.approx(1.0)

    def test_x_on_plus_state(self) -> None:
        plus = simulate(QuantumCircuit(1).h(0)).amplitudes
        assert expectation_pauli(plus, PauliString.parse("X0")) == pytest.approx(1.0)
        assert expectation_pauli(plus, PauliString.parse("Z0")) == pytest.approx(0.0, abs=1e-12)

    def test_zz_correlations_of_bell_state(self) -> None:
        bell = simulate(QuantumCircuit(2).h(0).cx(0, 1)).amplitudes
        assert expectation_pauli(bell, PauliString.parse("Z0 Z1")) == pytest.approx(1.0)
        assert expectation_pauli(bell, PauliString.parse("X0 X1")) == pytest.approx(1.0)
        assert expectation_pauli(bell, PauliString.parse("Y0 Y1")) == pytest.approx(-1.0)
        assert expectation_pauli(bell, PauliString.parse("Z0")) == pytest.approx(0.0, abs=1e-12)

    def test_apply_pauli_does_not_mutate(self) -> None:
        state = simulate(QuantumCircuit(1).h(0)).amplitudes
        before = state.copy()
        apply_pauli(state, PauliString.parse("X0"))
        np.testing.assert_array_equal(state, before)

    def test_width_check(self) -> None:
        with pytest.raises(SimulationError):
            expectation_pauli(StateVector(2).amplitudes, PauliString.parse("Z5"))


class TestObservable:
    def test_weighted_sum(self) -> None:
        observable = Observable.from_dict({"Z0": 2.0, "Z1": -1.0, "": 0.5})
        state = simulate(QuantumCircuit(2).x(1)).amplitudes
        # <Z0>=1, <Z1>=-1, identity term contributes its coefficient.
        assert observable.expectation(state) == pytest.approx(2.0 + 1.0 + 0.5)

    def test_min_width(self) -> None:
        observable = Observable.from_dict({"Z0 Z7": 1.0})
        assert observable.min_width() == 8

    def test_ising_energy_of_ghz(self) -> None:
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        state = simulate(circuit).amplitudes
        # GHZ: <Z_i Z_j> = 1 on every pair, <X_i> = 0.
        energy = ising_energy(state, [(0, 1), (1, 2)], coupling=-1.0, field=0.3)
        assert energy == pytest.approx(-2.0, abs=1e-10)
