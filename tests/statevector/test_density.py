"""Tests for the density-matrix engine and noise channels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import get_circuit
from repro.errors import SimulationError
from repro.statevector.density import (
    DensityMatrix,
    KrausChannel,
    amplitude_damping,
    depolarizing,
    phase_damping,
)
from repro.statevector.state import StateVector, simulate


class TestPureEvolution:
    @pytest.mark.parametrize("family", ["gs", "qft", "qaoa", "iqp"])
    def test_matches_statevector_outer_product(self, family: str) -> None:
        circuit = get_circuit(family, 6)
        dm = DensityMatrix(6).run(circuit)
        psi = simulate(circuit).amplitudes
        np.testing.assert_allclose(dm.rho, np.outer(psi, psi.conj()), atol=1e-10)
        assert dm.purity() == pytest.approx(1.0, abs=1e-10)
        assert dm.trace() == pytest.approx(1.0, abs=1e-10)

    @given(seed=st.integers(0, 40))
    def test_random_circuits(self, seed: int) -> None:
        rng = np.random.default_rng(seed)
        circuit = QuantumCircuit(4)
        for _ in range(15):
            kind = rng.integers(0, 3)
            if kind == 0:
                circuit.h(int(rng.integers(4)))
            elif kind == 1:
                circuit.t(int(rng.integers(4)))
            else:
                a, b = rng.choice(4, size=2, replace=False)
                circuit.cx(int(a), int(b))
        dm = DensityMatrix(4).run(circuit)
        psi = simulate(circuit).amplitudes
        np.testing.assert_allclose(dm.rho, np.outer(psi, psi.conj()), atol=1e-10)

    def test_from_statevector(self) -> None:
        psi = simulate(QuantumCircuit(2).h(0).cx(0, 1))
        dm = DensityMatrix.from_statevector(psi)
        assert dm.fidelity_with_pure(psi) == pytest.approx(1.0)


class TestChannels:
    def test_channel_trace_preservation_checked(self) -> None:
        with pytest.raises(SimulationError, match="trace-preserving"):
            KrausChannel("broken", (np.eye(2) * 0.5,))

    def test_parameter_bounds(self) -> None:
        for bad in (-0.1, 1.1):
            with pytest.raises(SimulationError):
                depolarizing(bad)
            with pytest.raises(SimulationError):
                amplitude_damping(bad)
            with pytest.raises(SimulationError):
                phase_damping(bad)

    def test_depolarizing_mixes(self) -> None:
        dm = DensityMatrix(1)
        dm.apply(QuantumCircuit(1).h(0)[0])
        dm.apply_channel(depolarizing(1.0), 0)
        np.testing.assert_allclose(dm.rho, np.eye(2) / 2, atol=1e-10)

    def test_amplitude_damping_fixed_point(self) -> None:
        dm = DensityMatrix(1)
        dm.apply(QuantumCircuit(1).x(0)[0])
        for _ in range(80):
            dm.apply_channel(amplitude_damping(0.25), 0)
        assert dm.probability_of_one(0) == pytest.approx(0.0, abs=1e-6)
        assert dm.trace() == pytest.approx(1.0, abs=1e-9)

    def test_phase_damping_kills_coherence_keeps_populations(self) -> None:
        dm = DensityMatrix(1)
        dm.apply(QuantumCircuit(1).h(0)[0])
        for _ in range(120):
            dm.apply_channel(phase_damping(0.3), 0)
        assert abs(dm.rho[0, 1]) < 1e-6  # coherences gone
        np.testing.assert_allclose(dm.probabilities(), [0.5, 0.5], atol=1e-9)

    def test_noise_reduces_fidelity_monotonically(self) -> None:
        circuit = get_circuit("gs", 4)
        psi = simulate(circuit)
        fidelities = []
        for p in (0.0, 0.05, 0.2):
            dm = DensityMatrix(4).run(circuit, noise=depolarizing(p))
            fidelities.append(dm.fidelity_with_pure(psi))
        assert fidelities[0] == pytest.approx(1.0, abs=1e-9)
        assert fidelities[0] > fidelities[1] > fidelities[2]

    def test_channel_on_second_qubit(self) -> None:
        dm = DensityMatrix(2)
        dm.apply(QuantumCircuit(2).x(1)[0])
        dm.apply_channel(amplitude_damping(1.0), 1)
        assert dm.probability_of_one(1) == pytest.approx(0.0, abs=1e-10)


class TestMeasurement:
    def test_bell_measurements_correlated(self) -> None:
        rng = np.random.default_rng(9)
        for _ in range(30):
            dm = DensityMatrix(2).run(QuantumCircuit(2).h(0).cx(0, 1))
            assert dm.measure(0, rng) == dm.measure(1, rng)

    def test_mid_circuit_measurement_steers(self) -> None:
        # Measure qubit 0 of a Bell pair, then CNOT onto a fresh qubit:
        # outcome propagates deterministically.
        from repro.circuits.gates import Gate

        rng = np.random.default_rng(2)
        dm = DensityMatrix(3).run(QuantumCircuit(3).h(0).cx(0, 1))
        outcome = dm.measure(0, rng)
        dm.apply(Gate("cx", (1, 2)))
        assert dm.measure(2, rng) == outcome

    def test_measurement_is_projective(self) -> None:
        rng = np.random.default_rng(5)
        dm = DensityMatrix(1)
        dm.apply(QuantumCircuit(1).h(0)[0])
        first = dm.measure(0, rng)
        assert dm.purity() == pytest.approx(1.0, abs=1e-10)
        for _ in range(4):
            assert dm.measure(0, rng) == first


class TestValidation:
    def test_width_limit(self) -> None:
        with pytest.raises(SimulationError):
            DensityMatrix(14)

    def test_shape_check(self) -> None:
        with pytest.raises(SimulationError):
            DensityMatrix(2, np.eye(3))

    def test_gate_out_of_range(self) -> None:
        from repro.circuits.gates import Gate

        with pytest.raises(SimulationError):
            DensityMatrix(2).apply(Gate("h", (3,)))
