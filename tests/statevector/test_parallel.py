"""Tests for the parallel chunk engine, zero-copy kernels, and worker knobs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.core.multigpu import assign_round_robin
from repro.core.simulator import QGpuSimulator
from repro.core.versions import ALL_VERSIONS
from repro.errors import SimulationError
from repro.statevector.chunks import ChunkedStateVector, chunk_pair_groups
from repro.statevector.kernels import (
    apply_pair,
    apply_single_qubit_fused,
    apply_single_qubit_inplace,
    chunk_diagonal_factor,
)
from repro.statevector.parallel import (
    AUTO_PARALLEL_THRESHOLD,
    ChunkWorkerPool,
    ParallelChunkEngine,
    resolve_workers,
    worker_assignment,
)
from repro.statevector.state import StateVector

SINGLE_GATES = ("h", "x", "y", "z", "s", "t")
PARAM_GATES = ("rx", "ry", "rz", "p")


def random_circuit(num_qubits: int, num_gates: int, seed: int) -> QuantumCircuit:
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_{seed}")
    for _ in range(num_gates):
        kind = rng.integers(0, 4)
        if kind == 0:
            name = str(rng.choice(SINGLE_GATES))
            getattr(circuit, name)(int(rng.integers(0, num_qubits)))
        elif kind == 1:
            name = str(rng.choice(PARAM_GATES))
            getattr(circuit, name)(float(rng.uniform(0, 2 * np.pi)),
                                   int(rng.integers(0, num_qubits)))
        elif kind == 2:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.cx(int(a), int(b))
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.cz(int(a), int(b))
    return circuit


class TestChunkPairGroupsEdges:
    def test_gate_spanning_every_outside_qubit_forms_one_group(self):
        # 3 outside qubits -> every chunk is in the single co-residency group.
        groups = chunk_pair_groups(6, 3, (3, 4, 5))
        assert groups == [(0, 1, 2, 3, 4, 5, 6, 7)]

    def test_gate_spanning_every_outside_qubit_mixed_inside(self):
        # Inside qubits do not change the grouping; all outside bits pair.
        groups = chunk_pair_groups(5, 3, (0, 3, 4))
        assert groups == [(0, 1, 2, 3)]

    def test_single_chunk_when_chunk_bits_equals_num_qubits(self):
        assert chunk_pair_groups(4, 4, (0,)) == [(0,)]
        assert chunk_pair_groups(4, 4, (3,)) == [(0,)]

    def test_groups_partition_all_chunks(self):
        groups = chunk_pair_groups(7, 4, (5, 6))
        seen = sorted(index for members in groups for index in members)
        assert seen == list(range(8))
        assert all(len(members) == 4 for members in groups)


class TestResolveWorkers:
    def test_explicit_int_passes_through(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    def test_auto_small_state_stays_serial(self):
        assert resolve_workers("auto", AUTO_PARALLEL_THRESHOLD - 1) == 1
        assert resolve_workers(None, 1 << 10) == 1

    def test_auto_large_state_uses_pool(self):
        resolved = resolve_workers("auto", AUTO_PARALLEL_THRESHOLD)
        assert 1 <= resolved <= 4

    @pytest.mark.parametrize("bad", [0, -2, 1.5, "three", True])
    def test_invalid_workers_rejected(self, bad):
        with pytest.raises(SimulationError, match="workers"):
            resolve_workers(bad)


class TestWorkerPool:
    def test_pool_requires_two_workers(self):
        with pytest.raises(SimulationError):
            ChunkWorkerPool(1)

    def test_run_tasks_executes_all_and_propagates_failure(self):
        pool = ChunkWorkerPool(3)
        hits: list[int] = []
        pool.run_tasks([lambda i=i: hits.append(i) for i in range(7)])
        assert sorted(hits) == list(range(7))

        def boom() -> None:
            raise ValueError("task failed")

        with pytest.raises(ValueError, match="task failed"):
            pool.run_tasks([lambda: None, boom])
        pool.close()
        with pytest.raises(SimulationError, match="closed"):
            pool.run_tasks([lambda: None])

    def test_engine_requires_two_workers_and_closes(self):
        with pytest.raises(SimulationError):
            ParallelChunkEngine(1)
        with ParallelChunkEngine(2) as engine:
            assert engine.workers == 2


class TestOwnershipMirrorsMultiGpu:
    def test_round_robin_slices_match_assign_round_robin(self):
        gate = Gate("h", (6,))
        workers = 3
        assignment = worker_assignment(8, 4, gate, workers)
        groups = chunk_pair_groups(8, 4, gate.qubits)
        assert list(assignment.groups) == groups
        # Worker w's slice items[w::workers] is exactly the set of groups
        # assign_round_robin gives owner w.
        for worker in range(workers):
            sliced = groups[worker::workers]
            owned = [
                group
                for group, owner in zip(assignment.groups, assignment.owners)
                if owner == worker
            ]
            assert sliced == owned

    def test_worker_assignment_is_the_multigpu_function(self):
        gate = Gate("cz", (5, 6))
        ours = worker_assignment(7, 4, gate, 2)
        theirs = assign_round_robin(7, 4, gate, 2)
        assert ours.groups == theirs.groups
        assert ours.owners == theirs.owners


class TestSerialParallelAgreement:
    @pytest.mark.parametrize("seed", range(4))
    def test_engine_matches_serial_and_dense(self, seed):
        num_qubits, chunk_bits = 8, 5
        circuit = random_circuit(num_qubits, 30, seed)
        dense = StateVector(num_qubits)
        dense.run(circuit)
        serial = ChunkedStateVector(num_qubits, chunk_bits).run(circuit)
        parallel = ChunkedStateVector(num_qubits, chunk_bits).run(circuit, workers=4)
        np.testing.assert_allclose(serial.to_dense(), dense.amplitudes, atol=1e-12)
        np.testing.assert_allclose(parallel.to_dense(), serial.to_dense(), atol=1e-12)

    @pytest.mark.parametrize("version", ALL_VERSIONS, ids=lambda v: v.name)
    def test_simulator_parallel_agrees_across_versions(self, version):
        circuit = random_circuit(7, 24, seed=11)
        serial = QGpuSimulator(version=version, chunk_bits=4, workers=1).run(circuit)
        parallel = QGpuSimulator(version=version, chunk_bits=4, workers=4).run(circuit)
        np.testing.assert_allclose(
            parallel.amplitudes, serial.amplitudes, atol=1e-12
        )
        assert parallel.chunk_updates_skipped == serial.chunk_updates_skipped

    def test_workers_one_is_bit_identical_to_serial(self):
        circuit = random_circuit(7, 24, seed=5)
        first = QGpuSimulator(chunk_bits=4, workers=1).run(circuit).amplitudes
        second = QGpuSimulator(chunk_bits=4, workers=1).run(circuit).amplitudes
        np.testing.assert_array_equal(
            first.view(np.uint64), second.view(np.uint64)
        )

    def test_pruning_aware_run_matches_unpruned(self):
        circuit = random_circuit(8, 20, seed=3)
        plain = ChunkedStateVector(8, 4).run(circuit)
        pruned = ChunkedStateVector(8, 4).run(circuit, workers=2, pruning=True)
        np.testing.assert_allclose(pruned.to_dense(), plain.to_dense(), atol=1e-12)

    def test_engine_handles_multi_qubit_cross_chunk_gate(self):
        # Both cx qubits above chunk_bits: the gathered fallback path.
        circuit = QuantumCircuit(6)
        for q in range(6):
            circuit.h(q)
        circuit.cx(4, 5)
        circuit.cz(3, 5)
        serial = ChunkedStateVector(6, 3).run(circuit)
        parallel = ChunkedStateVector(6, 3).run(circuit, workers=3)
        np.testing.assert_allclose(parallel.to_dense(), serial.to_dense(), atol=1e-12)

    def test_engine_applies_partial_group_lists(self):
        # A pruned subset of groups must only touch the listed chunks.
        state = ChunkedStateVector(6, 4)
        state.chunks[0][:] = 0
        state.chunks[0][0] = 1.0
        gate = Gate("h", (5,))
        groups = chunk_pair_groups(6, 4, gate.qubits)
        with ParallelChunkEngine(2) as engine:
            reference = ChunkedStateVector(6, 4)
            reference.apply_groups(gate, groups[:1])
            state.apply_groups(gate, groups[:1], engine)
            np.testing.assert_allclose(
                state.to_dense(), reference.to_dense(), atol=1e-12
            )


class TestKernels:
    def test_apply_pair_matches_dense_single_qubit(self):
        rng = np.random.default_rng(0)
        low = rng.normal(size=8) + 1j * rng.normal(size=8)
        high = rng.normal(size=8) + 1j * rng.normal(size=8)
        state = np.concatenate([low, high])
        gate = Gate("h", (3,))
        expected = state.copy()
        from repro.statevector.apply import apply_gate

        apply_gate(expected, gate)
        apply_pair(low, high, gate.matrix())
        np.testing.assert_allclose(np.concatenate([low, high]), expected, atol=1e-12)

    def test_apply_pair_rejects_non_2x2(self):
        buffer = np.zeros(4, dtype=np.complex128)
        with pytest.raises(SimulationError, match="2x2"):
            apply_pair(buffer, buffer, np.eye(4, dtype=np.complex128))

    @pytest.mark.parametrize("qubit", [0, 3, 7, 9])
    @pytest.mark.parametrize("parts", [1, 3])
    def test_fused_single_qubit_matches_dense(self, qubit, parts):
        rng = np.random.default_rng(qubit)
        source = (rng.normal(size=1 << 10) + 1j * rng.normal(size=1 << 10)).astype(
            np.complex128
        )
        dest = np.empty_like(source)
        gate = Gate("h", (qubit,))
        expected = source.copy()
        from repro.statevector.apply import apply_gate

        apply_gate(expected, gate)
        for part in range(parts):
            apply_single_qubit_fused(source, dest, gate.matrix(), qubit, part, parts)
        np.testing.assert_allclose(dest, expected, atol=1e-12)

    def test_chunk_diagonal_factor_scalar_and_vector(self):
        gate = Gate("cz", (4, 5))
        # Both qubits outside chunk_bits=3: factor is a scalar phase.
        factor = chunk_diagonal_factor(gate, 3, 0b110000 >> 3)
        assert factor == pytest.approx(-1.0)
        assert chunk_diagonal_factor(gate, 3, 0) == pytest.approx(1.0)
        # One qubit inside: factor is a per-offset vector.
        mixed = Gate("cz", (1, 4))
        vector = chunk_diagonal_factor(mixed, 3, 0b10)
        assert isinstance(vector, np.ndarray)
        assert vector.shape == (8,)
        np.testing.assert_allclose(vector, [1, 1, -1, -1, 1, 1, -1, -1])

    def test_chunk_diagonal_factor_cache_shared_by_pattern(self):
        gate = Gate("rz", (5,), (0.7,))
        cache: dict[int, np.ndarray | complex] = {}
        first = chunk_diagonal_factor(gate, 3, 0, cache)
        again = chunk_diagonal_factor(gate, 3, 1, cache)  # same outside bits
        assert first is again
        other = chunk_diagonal_factor(gate, 3, 0b100, cache)
        assert other is not first
        assert len(cache) == 2


class TestTiledKernels:
    """Cache-tiling edges of the fused / in-place single-qubit kernels."""

    def _random(self, size: int, seed: int = 0) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return (rng.normal(size=size) + 1j * rng.normal(size=size)).astype(
            np.complex128
        )

    def _expected(self, source: np.ndarray, qubit: int) -> np.ndarray:
        from repro.statevector.apply import apply_gate

        expected = source.copy()
        apply_gate(expected, Gate("h", (qubit,)))
        return expected

    def test_fused_column_axis_path_matches_dense(self, monkeypatch):
        # Force row_amps > _TILE_AMPS so the per-row column tiling runs:
        # with the tile budget at 16 amps, qubit=4 in a 256-amp state has
        # row_amps = 2 * 16 = 32.  parts=2 keeps the call off the untiled
        # single-worker shortcut.
        from repro.statevector import kernels

        monkeypatch.setattr(kernels, "_TILE_AMPS", 16)
        source = self._random(1 << 8)
        dest = np.empty_like(source)
        matrix = Gate("h", (4,)).matrix()
        for part in range(2):
            apply_single_qubit_fused(source, dest, matrix, 4, part, 2)
        np.testing.assert_allclose(dest, self._expected(source, 4), atol=1e-12)

    @pytest.mark.parametrize("qubit,parts", [(7, 3), (6, 5)])
    def test_fused_above_smaller_than_parts_splits_columns(self, qubit, parts):
        # above = size >> (qubit+1) < parts: the column-axis split path.
        source = self._random(1 << 8, seed=qubit)
        assert (source.size >> (qubit + 1)) < parts
        dest = np.empty_like(source)
        matrix = Gate("h", (qubit,)).matrix()
        for part in range(parts):
            apply_single_qubit_fused(source, dest, matrix, qubit, part, parts)
        np.testing.assert_allclose(
            dest, self._expected(source, qubit), atol=1e-12
        )

    @pytest.mark.parametrize("qubit", [0, 3, 6, 7])
    @pytest.mark.parametrize("parts", [1, 2, 3])
    def test_fused_parts_cover_disjointly(self, qubit, parts):
        # Each part writes a contiguous region; together the regions
        # partition the state: every index written by exactly one part.
        source = self._random(1 << 8, seed=1)
        matrix = Gate("h", (qubit,)).matrix()
        written_by = np.zeros(source.size, dtype=int)
        for part in range(parts):
            dest = np.full_like(source, np.nan)
            apply_single_qubit_fused(source, dest, matrix, qubit, part, parts)
            written_by += ~np.isnan(dest.real)
        assert (written_by == 1).all()

    @pytest.mark.parametrize("qubit", [0, 2, 4, 7])
    @pytest.mark.parametrize("parts", [1, 3])
    def test_inplace_matches_dense(self, qubit, parts):
        buffer = self._random(1 << 8, seed=qubit)
        expected = self._expected(buffer, qubit)
        matrix = Gate("h", (qubit,)).matrix()
        for part in range(parts):
            apply_single_qubit_inplace(buffer, matrix, qubit, part, parts)
        np.testing.assert_allclose(buffer, expected, atol=1e-12)

    def test_inplace_above_smaller_than_parts(self):
        # size 2^5, qubit 3: above = 2 rows < 3 parts -> column split.
        buffer = self._random(1 << 5, seed=5)
        expected = self._expected(buffer, 3)
        matrix = Gate("h", (3,)).matrix()
        for part in range(3):
            apply_single_qubit_inplace(buffer, matrix, 3, part, 3)
        np.testing.assert_allclose(buffer, expected, atol=1e-12)

    def test_inplace_column_tiling_within_rows(self, monkeypatch):
        # below > _SCRATCH_AMPS with above >= parts: the per-row column
        # tiling inside the row-range branch.
        from repro.statevector import kernels

        monkeypatch.setattr(kernels, "_SCRATCH_AMPS", 8)
        buffer = self._random(1 << 8, seed=2)
        expected = self._expected(buffer, 5)  # below = 32 > 8, above = 4
        apply_single_qubit_inplace(buffer, Gate("h", (5,)).matrix(), 5)
        np.testing.assert_allclose(buffer, expected, atol=1e-12)

    @pytest.mark.parametrize("qubit,parts", [(2, 2), (6, 3), (7, 3)])
    def test_inplace_parts_cover_disjointly(self, qubit, parts):
        # Doubling matrix: an amplitude is exactly doubled iff exactly one
        # part touched it, so all-doubled proves a disjoint exact cover.
        buffer = np.ones(1 << 8, dtype=np.complex128)
        double = 2.0 * np.eye(2, dtype=np.complex128)
        for part in range(parts):
            apply_single_qubit_inplace(buffer, double, qubit, part, parts)
        np.testing.assert_array_equal(buffer, np.full(buffer.size, 2.0 + 0j))

    def test_inplace_rejects_bad_inputs(self):
        buffer = np.zeros(8, dtype=np.complex128)
        with pytest.raises(SimulationError, match="2x2"):
            apply_single_qubit_inplace(buffer, np.eye(4), 0)
        with pytest.raises(SimulationError, match="cannot host"):
            apply_single_qubit_inplace(buffer, np.eye(2), 3)

    def test_tiled_apply_pair_is_bit_identical_across_tilings(self, monkeypatch):
        # The pair recurrence is element-wise with a fixed operation
        # order, so the tile size cannot change a single bit.
        from repro.statevector import kernels

        gate = Gate("rx", (0,), (0.8,))
        low = self._random(1 << 6, seed=3)
        high = self._random(1 << 6, seed=4)
        ref_low, ref_high = low.copy(), high.copy()
        apply_pair(ref_low, ref_high, gate.matrix())
        monkeypatch.setattr(kernels, "_SCRATCH_AMPS", 8)
        apply_pair(low, high, gate.matrix())
        np.testing.assert_array_equal(
            low.view(np.uint64), ref_low.view(np.uint64)
        )
        np.testing.assert_array_equal(
            high.view(np.uint64), ref_high.view(np.uint64)
        )


class TestBackingStorage:
    def test_chunks_are_views_into_backing(self):
        state = ChunkedStateVector(5, 3)
        state.chunks[1][0] = 0.5
        assert state.backing[1 << 3] == 0.5

    def test_swap_backing_rejects_mismatched_buffer(self):
        state = ChunkedStateVector(5, 3)
        with pytest.raises(SimulationError, match="layout"):
            state.swap_backing(np.zeros(7, dtype=np.complex128))
        with pytest.raises(SimulationError, match="layout"):
            state.swap_backing(np.zeros(1 << 5, dtype=np.complex64))

    def test_swap_backing_returns_old_and_rebinds_views(self):
        state = ChunkedStateVector(5, 3)
        fresh = np.arange(1 << 5, dtype=np.complex128)
        old = state.swap_backing(fresh)
        assert old[0] == 1.0
        assert state.chunks[0][1] == 1.0  # view of the new buffer
        state.chunks[2][0] = -9.0
        assert state.backing[2 << 3] == -9.0


class TestSimulatorWorkersKnob:
    def test_invalid_workers_rejected_at_construction(self):
        with pytest.raises(SimulationError, match="workers"):
            QGpuSimulator(workers=0)

    def test_run_override_beats_constructor(self):
        circuit = random_circuit(6, 12, seed=2)
        base = QGpuSimulator(chunk_bits=3, workers=1).run(circuit)
        overridden = QGpuSimulator(chunk_bits=3, workers=1).run(circuit, workers=3)
        np.testing.assert_allclose(
            overridden.amplitudes, base.amplitudes, atol=1e-12
        )

    def test_guarded_run_stays_serial_and_recovers(self):
        from repro.reliability.faults import FaultPlan

        circuit = random_circuit(6, 12, seed=9)
        plan = FaultPlan.from_spec("seed=3,transfer=0.05")
        clean = QGpuSimulator(chunk_bits=3, workers=4).run(circuit)
        faulty = QGpuSimulator(
            chunk_bits=3, workers=4, fault_plan=plan
        ).run(circuit)
        assert faulty.reliability is not None
        np.testing.assert_allclose(
            faulty.amplitudes, clean.amplitudes, atol=1e-12
        )
