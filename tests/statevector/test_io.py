"""Tests for compressed state persistence."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.circuits.library import get_circuit
from repro.errors import CompressionError
from repro.statevector.io import dump_state, load_state, roundtrip_bytes
from repro.statevector.state import StateVector, simulate


class TestRoundTrip:
    def test_bit_exact_roundtrip_in_memory(self) -> None:
        state = simulate(get_circuit("qaoa", 10))
        buffer = io.BytesIO(roundtrip_bytes(state))
        recovered = load_state(buffer)
        assert recovered.num_qubits == 10
        np.testing.assert_array_equal(
            recovered.amplitudes.view(np.uint64),
            state.amplitudes.view(np.uint64),
        )

    def test_file_roundtrip(self, tmp_path) -> None:
        state = simulate(get_circuit("gs", 8))
        path = tmp_path / "state.qgsv"
        written = dump_state(state, path)
        assert path.stat().st_size == written
        recovered = load_state(path)
        np.testing.assert_array_equal(recovered.amplitudes, state.amplitudes)

    def test_raw_array_accepted(self, rng) -> None:
        amplitudes = (rng.normal(size=16) + 1j * rng.normal(size=16)).astype(
            np.complex128
        )
        recovered = load_state(io.BytesIO(roundtrip_bytes(amplitudes)))
        np.testing.assert_array_equal(recovered.amplitudes, amplitudes)

    def test_structured_states_compress(self) -> None:
        uniform = simulate(get_circuit("gs", 12))
        raw_bytes = 16 << 12
        assert len(roundtrip_bytes(uniform)) < 0.4 * raw_bytes


class TestErrors:
    def test_bad_magic(self) -> None:
        data = bytearray(roundtrip_bytes(StateVector(3)))
        data[0] = ord("X")
        with pytest.raises(CompressionError, match="magic"):
            load_state(io.BytesIO(bytes(data)))

    def test_truncated_header(self) -> None:
        with pytest.raises(CompressionError, match="too short"):
            load_state(io.BytesIO(b"QG"))

    def test_truncated_payload(self) -> None:
        data = roundtrip_bytes(StateVector(4))
        with pytest.raises(CompressionError, match="truncated"):
            load_state(io.BytesIO(data[:-10]))

    def test_version_check(self) -> None:
        data = bytearray(roundtrip_bytes(StateVector(3)))
        data[4] = 99  # version byte
        with pytest.raises(CompressionError, match="version"):
            load_state(io.BytesIO(bytes(data)))
