"""Tests for compressed state persistence."""

from __future__ import annotations

import io

import numpy as np
import pytest

import struct
import zlib

from repro.circuits.library import get_circuit
from repro.compression.gfc import compress
from repro.errors import CompressionError, IntegrityError
from repro.statevector.io import dump_state, load_state, read_exact, roundtrip_bytes
from repro.statevector.state import StateVector, simulate


class _DribbleStream(io.BytesIO):
    """A stream that returns at most one byte per read, like a slow pipe."""

    def read(self, size: int = -1) -> bytes:
        return super().read(min(size, 1) if size and size > 0 else size)


class TestRoundTrip:
    def test_bit_exact_roundtrip_in_memory(self) -> None:
        state = simulate(get_circuit("qaoa", 10))
        buffer = io.BytesIO(roundtrip_bytes(state))
        recovered = load_state(buffer)
        assert recovered.num_qubits == 10
        np.testing.assert_array_equal(
            recovered.amplitudes.view(np.uint64),
            state.amplitudes.view(np.uint64),
        )

    def test_file_roundtrip(self, tmp_path) -> None:
        state = simulate(get_circuit("gs", 8))
        path = tmp_path / "state.qgsv"
        written = dump_state(state, path)
        assert path.stat().st_size == written
        recovered = load_state(path)
        np.testing.assert_array_equal(recovered.amplitudes, state.amplitudes)

    def test_raw_array_accepted(self, rng) -> None:
        amplitudes = (rng.normal(size=16) + 1j * rng.normal(size=16)).astype(
            np.complex128
        )
        recovered = load_state(io.BytesIO(roundtrip_bytes(amplitudes)))
        np.testing.assert_array_equal(recovered.amplitudes, amplitudes)

    def test_structured_states_compress(self) -> None:
        uniform = simulate(get_circuit("gs", 12))
        raw_bytes = 16 << 12
        assert len(roundtrip_bytes(uniform)) < 0.4 * raw_bytes


class TestErrors:
    def test_bad_magic(self) -> None:
        data = bytearray(roundtrip_bytes(StateVector(3)))
        data[0] = ord("X")
        with pytest.raises(CompressionError, match="magic"):
            load_state(io.BytesIO(bytes(data)))

    def test_truncated_header(self) -> None:
        with pytest.raises(CompressionError, match="too short"):
            load_state(io.BytesIO(b"QG"))

    def test_truncated_payload(self) -> None:
        data = roundtrip_bytes(StateVector(4))
        with pytest.raises(CompressionError, match="truncated"):
            load_state(io.BytesIO(data[:-10]))

    def test_version_check(self) -> None:
        data = bytearray(roundtrip_bytes(StateVector(3)))
        data[4] = 99  # version byte
        with pytest.raises(CompressionError, match="version"):
            load_state(io.BytesIO(bytes(data)))


class TestFormatV2:
    def test_header_carries_v2_and_payload_crc(self) -> None:
        data = roundtrip_bytes(StateVector(4))
        magic, version, _, num_qubits, payload_length = struct.unpack_from("<4sBBIQ", data)
        assert (magic, version, num_qubits) == (b"QGSV", 2, 4)
        (crc,) = struct.unpack_from("<I", data, 18)
        assert crc == zlib.crc32(data[22:])
        assert payload_length == len(data) - 22

    def test_payload_corruption_raises_integrity_error(self) -> None:
        data = bytearray(roundtrip_bytes(simulate(get_circuit("qft", 6))))
        data[-3] ^= 0x40
        with pytest.raises(IntegrityError, match="CRC32"):
            load_state(io.BytesIO(bytes(data)))

    def test_v1_stream_still_loads(self) -> None:
        state = simulate(get_circuit("bv", 6))
        payload = compress(state.amplitudes)
        v1 = struct.pack("<4sBBIQ", b"QGSV", 1, 0, 6, len(payload)) + payload
        recovered = load_state(io.BytesIO(v1))
        np.testing.assert_array_equal(
            recovered.amplitudes.view(np.uint64),
            state.amplitudes.view(np.uint64),
        )

    def test_v1_stream_skips_crc_check(self) -> None:
        # A v1 stream has no checksum, so corruption surfaces (if at all)
        # as a codec error rather than IntegrityError.
        payload = compress(StateVector(4).amplitudes)
        v1 = struct.pack("<4sBBIQ", b"QGSV", 1, 0, 4, len(payload)) + payload
        try:
            load_state(io.BytesIO(bytearray(v1)))
        except IntegrityError:  # pragma: no cover - would mean v1 got a CRC
            pytest.fail("v1 streams must not be CRC-checked")

    def test_truncated_crc_field(self) -> None:
        data = roundtrip_bytes(StateVector(3))
        with pytest.raises(CompressionError, match="checksum field"):
            load_state(io.BytesIO(data[:20]))  # header plus half the CRC


class TestShortReads:
    def test_read_exact_loops_over_short_reads(self) -> None:
        stream = _DribbleStream(b"abcdefgh")
        assert read_exact(stream, 5) == b"abcde"
        assert read_exact(stream, 10) == b"fgh"  # EOF: returns what's left

    def test_load_from_dribbling_stream(self) -> None:
        state = simulate(get_circuit("qaoa", 7))
        recovered = load_state(_DribbleStream(roundtrip_bytes(state)))
        np.testing.assert_array_equal(
            recovered.amplitudes.view(np.uint64),
            state.amplitudes.view(np.uint64),
        )
