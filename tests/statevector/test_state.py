"""Tests for the dense StateVector engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.errors import SimulationError
from repro.statevector.state import StateVector, simulate


class TestInitialisation:
    def test_starts_in_zero_state(self) -> None:
        state = StateVector(3)
        assert state.amplitudes[0] == 1.0
        assert np.count_nonzero(state.amplitudes) == 1

    def test_custom_initial_state_is_copied(self) -> None:
        initial = np.zeros(4, dtype=np.complex128)
        initial[3] = 1.0
        state = StateVector(2, initial)
        initial[3] = 0.0
        assert state.amplitudes[3] == 1.0

    def test_wrong_initial_shape_rejected(self) -> None:
        with pytest.raises(SimulationError):
            StateVector(2, np.zeros(3, dtype=np.complex128))

    def test_width_limit_enforced(self) -> None:
        with pytest.raises(SimulationError, match="structural"):
            StateVector(StateVector.MAX_DENSE_QUBITS + 1)

    def test_non_positive_width_rejected(self) -> None:
        with pytest.raises(SimulationError):
            StateVector(0)


class TestKnownStates:
    def test_bell_state(self) -> None:
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        state = simulate(circuit)
        expected = np.zeros(4, dtype=np.complex128)
        expected[0b00] = expected[0b11] = 1 / np.sqrt(2)
        np.testing.assert_allclose(state.amplitudes, expected, atol=1e-12)

    def test_ghz_state(self) -> None:
        circuit = QuantumCircuit(4).h(0)
        for q in range(3):
            circuit.cx(q, q + 1)
        state = simulate(circuit)
        assert state.amplitudes[0] == pytest.approx(1 / np.sqrt(2))
        assert state.amplitudes[-1] == pytest.approx(1 / np.sqrt(2))
        assert state.nonzero_fraction() == pytest.approx(2 / 16)

    def test_x_gate_flips(self) -> None:
        state = simulate(QuantumCircuit(1).x(0))
        np.testing.assert_allclose(state.amplitudes, [0, 1])

    def test_plus_state_probabilities(self) -> None:
        state = simulate(QuantumCircuit(1).h(0))
        np.testing.assert_allclose(state.probabilities(), [0.5, 0.5])


class TestInvariants:
    @given(seed=st.integers(0, 300), num_gates=st.integers(1, 40))
    def test_norm_is_preserved(self, seed: int, num_gates: int) -> None:
        rng = np.random.default_rng(seed)
        circuit = QuantumCircuit(4)
        names = ["h", "x", "s", "t", "sx"]
        for _ in range(num_gates):
            choice = int(rng.integers(0, 7))
            if choice == 5:
                a, b = rng.choice(4, size=2, replace=False)
                circuit.cx(int(a), int(b))
            elif choice == 6:
                circuit.rz(float(rng.uniform(-3, 3)), int(rng.integers(4)))
            else:
                circuit.add(names[choice], int(rng.integers(4)))
        state = simulate(circuit)
        assert state.norm() == pytest.approx(1.0, abs=1e-10)

    def test_fidelity_with_self_is_one(self) -> None:
        state = simulate(QuantumCircuit(3).h(0).cx(0, 1).t(2))
        assert state.fidelity(state.copy()) == pytest.approx(1.0)

    def test_fidelity_of_orthogonal_states_is_zero(self) -> None:
        a = simulate(QuantumCircuit(1).x(0))
        b = StateVector(1)
        assert a.fidelity(b) == pytest.approx(0.0, abs=1e-15)

    def test_fidelity_width_mismatch_rejected(self) -> None:
        with pytest.raises(SimulationError):
            StateVector(2).fidelity(StateVector(3))


class TestRun:
    def test_run_width_mismatch_rejected(self) -> None:
        with pytest.raises(SimulationError, match="width"):
            StateVector(2).run(QuantumCircuit(3).h(0))

    def test_apply_out_of_range_gate_rejected(self) -> None:
        from repro.circuits.gates import Gate

        with pytest.raises(SimulationError, match="exceeds register"):
            StateVector(2).apply(Gate("h", (4,)))

    def test_copy_is_independent(self) -> None:
        original = StateVector(2)
        clone = original.copy()
        clone.run(QuantumCircuit(2).x(0))
        assert original.amplitudes[0] == 1.0
        assert clone.amplitudes[1] == 1.0
