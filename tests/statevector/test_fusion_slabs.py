"""Gate-fusion slabs: structure, numerics, and end-to-end agreement.

Three layers of contract:

* :func:`fuse_slabs` is a pure regrouping - concatenating the members of
  its output reproduces the input gate stream exactly, and every cap
  (dense width, diagonal width, outside-qubit bound) holds.
* A :class:`GateSlab`'s contracted matrix / combined diagonal is the
  mathematical product of its members, so applying the slab agrees with
  applying the gates one by one to 1e-12.
* The simulator's ``fusion="on"`` default agrees with ``fusion="off"``
  across every paper version and both precisions, and the bypass paths
  (checkpointing) stay byte-identical to the per-gate run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.circuits.library import get_circuit
from repro.core.simulator import QGpuSimulator
from repro.core.versions import ALL_VERSIONS
from repro.errors import SimulationError
from repro.statevector.chunks import ChunkedStateVector
from repro.statevector.fusion import (
    MAX_DIAGONAL_OUTSIDE,
    MAX_DIAGONAL_WIDTH,
    MAX_FUSION_WIDTH,
    GateSlab,
    fuse_slabs,
    fused_sweep_count,
    slab_members,
)
from repro.statevector.state import StateVector


def _flatten(ops) -> list[Gate]:
    return [gate for op in ops for gate in slab_members(op)]


def _mixed_circuit(num_qubits: int = 6) -> QuantumCircuit:
    """Dense chains, diagonal runs, and unfusible strays in one stream."""
    circuit = QuantumCircuit(num_qubits, name="mixed")
    for q in range(num_qubits):
        circuit.h(q)
    circuit.rz(0.3, 0)
    circuit.rz(0.7, 1)
    circuit.cz(0, 2)
    circuit.cx(0, 1)
    circuit.h(1)
    circuit.t(1)
    circuit.cx(2, 3)
    circuit.rz(1.1, 4)
    circuit.p(0.2, 5)
    circuit.cz(4, 5)
    circuit.h(5)
    return circuit


class TestFuseSlabsStructure:
    def test_members_reproduce_input_stream_exactly(self):
        gates = list(_mixed_circuit())
        ops = fuse_slabs(gates)
        assert _flatten(ops) == gates

    def test_consecutive_diagonals_form_one_diagonal_slab(self):
        circuit = QuantumCircuit(5)
        circuit.rz(0.1, 0)
        circuit.cz(1, 2)
        circuit.t(3)
        ops = fuse_slabs(list(circuit))
        assert len(ops) == 1
        (slab,) = ops
        assert isinstance(slab, GateSlab)
        assert slab.kind == "diagonal"
        assert slab.qubits == (0, 1, 2, 3)
        assert slab.name == "dslab[3]"

    def test_overlapping_dense_gates_fuse(self):
        circuit = QuantumCircuit(4)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.h(1)
        ops = fuse_slabs(list(circuit))
        assert len(ops) == 1
        (slab,) = ops
        assert slab.kind == "dense"
        assert slab.qubits == (0, 1)

    def test_disjoint_dense_gates_do_not_fuse(self):
        circuit = QuantumCircuit(4)
        circuit.h(0)
        circuit.h(2)
        ops = fuse_slabs(list(circuit))
        assert len(ops) == 2
        assert all(isinstance(op, Gate) for op in ops)

    def test_singletons_are_bare_gates(self):
        # Nothing fusible: the output is the input, same objects.
        circuit = QuantumCircuit(6)
        circuit.h(0)
        circuit.h(2)
        circuit.h(4)
        ops = fuse_slabs(list(circuit))
        assert ops == list(circuit)

    def test_dense_width_cap_holds(self):
        # A cx ladder unions one new qubit per gate; the slab must split
        # at MAX_FUSION_WIDTH.
        circuit = QuantumCircuit(10)
        for q in range(9):
            circuit.cx(q, q + 1)
        ops = fuse_slabs(list(circuit))
        for op in ops:
            if isinstance(op, GateSlab):
                assert op.width <= MAX_FUSION_WIDTH
        assert _flatten(ops) == list(circuit)

    def test_diagonal_width_cap_holds(self):
        circuit = QuantumCircuit(MAX_DIAGONAL_WIDTH + 4)
        for q in range(MAX_DIAGONAL_WIDTH + 4):
            circuit.rz(0.1 * (q + 1), q)
        ops = fuse_slabs(list(circuit))
        for op in ops:
            if isinstance(op, GateSlab):
                assert op.kind == "diagonal"
                assert op.width <= MAX_DIAGONAL_WIDTH
        assert _flatten(ops) == list(circuit)

    def test_diagonal_outside_cap_with_chunk_bits(self):
        # 8 diagonals all above chunk_bits: without the cap one slab,
        # with chunk_bits the outside union is bounded.
        circuit = QuantumCircuit(12)
        for q in range(4, 12):
            circuit.rz(0.2, q)
        ops = fuse_slabs(list(circuit), chunk_bits=4)
        for op in ops:
            if isinstance(op, GateSlab):
                outside = sum(1 for q in op.qubits if q >= 4)
                assert outside <= MAX_DIAGONAL_OUTSIDE
        assert _flatten(ops) == list(circuit)

    def test_lone_diagonal_between_dense_joins_dense_slab(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.rz(0.4, 0)
        circuit.h(0)
        ops = fuse_slabs(list(circuit))
        assert len(ops) == 1
        assert ops[0].kind == "dense"
        assert len(ops[0].gates) == 3

    def test_fused_sweep_count_matches_len(self):
        gates = list(_mixed_circuit())
        assert fused_sweep_count(gates) == len(fuse_slabs(gates))
        assert fused_sweep_count(gates) < len(gates)

    @pytest.mark.parametrize("kwargs", [{"max_width": 0},
                                        {"max_diagonal_width": 0}])
    def test_invalid_caps_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            fuse_slabs([Gate("h", (0,))], **kwargs)


class TestGateSlabValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError, match="kind"):
            GateSlab(gates=(Gate("h", (0,)),), qubits=(0,), kind="sparse")

    def test_empty_slab_rejected(self):
        with pytest.raises(SimulationError, match="at least one"):
            GateSlab(gates=(), qubits=(), kind="dense")

    def test_wrong_qubit_union_rejected(self):
        with pytest.raises(SimulationError, match="union"):
            GateSlab(gates=(Gate("h", (0,)),), qubits=(0, 1), kind="dense")

    def test_non_diagonal_member_in_diagonal_slab_rejected(self):
        with pytest.raises(SimulationError, match="non-diagonal"):
            GateSlab(
                gates=(Gate("rz", (0,), params=(0.1,)), Gate("h", (0,))),
                qubits=(0,),
                kind="diagonal",
            )

    def test_diagonal_of_dense_slab_rejected(self):
        slab = GateSlab(
            gates=(Gate("h", (0,)), Gate("h", (0,))), qubits=(0,), kind="dense"
        )
        with pytest.raises(SimulationError, match="not diagonal"):
            slab.diagonal()

    def test_matrix_and_diagonal_are_memoized_read_only(self):
        slab = fuse_slabs([Gate("h", (0,)), Gate("cx", (0, 1))])[0]
        assert slab.matrix() is slab.matrix()
        with pytest.raises(ValueError):
            slab.matrix()[0, 0] = 9.0
        dslab = fuse_slabs(
            [Gate("rz", (0,), params=(0.1,)), Gate("cz", (0, 1))]
        )[0]
        assert dslab.diagonal() is dslab.diagonal()
        with pytest.raises(ValueError):
            dslab.diagonal()[0] = 9.0


class TestSlabNumerics:
    """Slab application == member-by-member application, to 1e-12."""

    def _reference(self, gates, num_qubits: int) -> np.ndarray:
        rng = np.random.default_rng(7)
        amps = rng.normal(size=1 << num_qubits) + 1j * rng.normal(
            size=1 << num_qubits
        )
        amps /= np.linalg.norm(amps)
        return amps.astype(np.complex128)

    @pytest.mark.parametrize("seed", range(3))
    def test_dense_slab_matrix_equals_member_product(self, seed):
        rng = np.random.default_rng(seed)
        gates = [Gate("h", (0,)), Gate("cx", (0, 1)),
                 Gate("rz", (1,), params=(float(rng.uniform(0, 6)),)),
                 Gate("h", (1,))]
        ops = fuse_slabs(gates)
        assert len(ops) == 1 and ops[0].kind == "dense"
        state = StateVector(3)
        fused = self._reference(gates, 3)
        unfused = fused.copy()
        state.amplitudes[:] = fused
        state.apply(ops[0])
        fused = state.amplitudes.copy()
        state.amplitudes[:] = unfused
        for gate in gates:
            state.apply(gate)
        np.testing.assert_allclose(fused, state.amplitudes, atol=1e-12)

    def test_diagonal_slab_multiplier_equals_member_product(self):
        gates = [Gate("rz", (0,), params=(0.3,)), Gate("cz", (0, 2)),
                 Gate("t", (1,)), Gate("p", (2,), params=(1.2,))]
        ops = fuse_slabs(gates)
        assert len(ops) == 1 and ops[0].kind == "diagonal"
        state = StateVector(3)
        start = self._reference(gates, 3)
        state.amplitudes[:] = start
        state.apply(ops[0])
        fused = state.amplitudes.copy()
        state.amplitudes[:] = start
        for gate in gates:
            state.apply(gate)
        np.testing.assert_allclose(fused, state.amplitudes, atol=1e-12)

    def test_remapped_slab_matches_remapped_members(self):
        gates = [Gate("h", (0,)), Gate("cx", (0, 1))]
        slab = fuse_slabs(gates)[0]
        mapping = {0: 2, 1: 4}
        moved = slab.remapped(mapping)
        assert moved.qubits == (2, 4)
        state = StateVector(5)
        start = self._reference(gates, 5)
        state.amplitudes[:] = start
        state.apply(moved)
        fused = state.amplitudes.copy()
        state.amplitudes[:] = start
        for gate in gates:
            state.apply(gate.remapped(mapping))
        np.testing.assert_allclose(fused, state.amplitudes, atol=1e-12)


CIRCUITS = ("qft", "iqp", "qaoa", "bv")


class TestEndToEndAgreement:
    @pytest.mark.parametrize("version", ALL_VERSIONS, ids=lambda v: v.name)
    @pytest.mark.parametrize("name", CIRCUITS)
    def test_fused_matches_unfused_all_versions(self, version, name):
        circuit = get_circuit(name, 8)
        fused = QGpuSimulator(version=version, chunk_bits=4).run(circuit)
        plain = QGpuSimulator(version=version, chunk_bits=4, fusion="off").run(
            circuit
        )
        np.testing.assert_allclose(
            fused.amplitudes, plain.amplitudes, atol=1e-12
        )

    @pytest.mark.parametrize("precision,atol", [("double", 1e-12),
                                                ("single", 2e-5)])
    def test_fused_matches_unfused_both_precisions(self, precision, atol):
        # complex64 carries ~7 significant digits, so the single-precision
        # tolerance is the precision's own, not fusion's.
        circuit = get_circuit("qft", 9)
        fused = QGpuSimulator(chunk_bits=5, precision=precision).run(circuit)
        plain = QGpuSimulator(
            chunk_bits=5, precision=precision, fusion="off"
        ).run(circuit)
        np.testing.assert_allclose(fused.amplitudes, plain.amplitudes,
                                   atol=atol)

    def test_fused_parallel_matches_unfused_serial(self):
        circuit = get_circuit("qaoa", 9)
        fused = QGpuSimulator(chunk_bits=5, workers=4).run(circuit)
        plain = QGpuSimulator(chunk_bits=5, workers=1, fusion="off").run(
            circuit
        )
        np.testing.assert_allclose(
            fused.amplitudes, plain.amplitudes, atol=1e-12
        )

    def test_checkpointed_run_bypasses_fusion_byte_identically(self, tmp_path):
        # Any checkpointing knob forces the per-gate path even when
        # fusion="on": cursor counting is defined on original gates.
        circuit = get_circuit("qft", 7)
        plain = QGpuSimulator(fusion="off").run(circuit)
        checked = QGpuSimulator(fusion="on").run(
            circuit, checkpoint_every=5,
            checkpoint_path=tmp_path / "ck.npz",
        )
        np.testing.assert_array_equal(
            plain.amplitudes.view(np.uint64),
            checked.amplitudes.view(np.uint64),
        )

    def test_run_override_beats_constructor_fusion(self):
        circuit = get_circuit("iqp", 7)
        on_sim = QGpuSimulator(fusion="on")
        off_sim = QGpuSimulator(fusion="off")
        a = on_sim.run(circuit, fusion="off").amplitudes
        b = off_sim.run(circuit).amplitudes
        np.testing.assert_array_equal(a.view(np.uint64), b.view(np.uint64))

    def test_engine_run_fusion_off_is_byte_identical_to_pre_fusion_path(self):
        # fusion="off" must reproduce the per-gate engine bit for bit.
        circuit = get_circuit("qft", 8)
        off = ChunkedStateVector(8, 4).run(circuit, fusion="off")
        manual = ChunkedStateVector(8, 4)
        for gate in circuit:
            manual.apply(gate)
        np.testing.assert_array_equal(
            off.to_dense().view(np.uint64), manual.to_dense().view(np.uint64)
        )

    @pytest.mark.parametrize("bad", ["maybe", "", "auto"])
    def test_invalid_fusion_knob_rejected(self, bad):
        with pytest.raises(SimulationError, match="fusion"):
            QGpuSimulator(fusion=bad)
        with pytest.raises(SimulationError, match="fusion"):
            ChunkedStateVector(6, 3).run(QuantumCircuit(6), fusion=bad)

    def test_fusion_counters_and_stage_recorded(self):
        from repro.obs import LogicalClock, Tracer

        tracer = Tracer(clock=LogicalClock())
        QGpuSimulator(tracer=tracer).run(get_circuit("qft", 7))
        snapshot = tracer.counters.snapshot()
        assert snapshot.get("fusion.slabs", 0) > 0
        assert snapshot.get("fusion.gates_fused", 0) > snapshot["fusion.slabs"]
        assert any(span.stage == "fuse" for span in tracer.spans)
