"""Tests for mid-circuit measurement and reset on the dense engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.errors import SimulationError
from repro.statevector.state import StateVector, simulate


class TestMeasure:
    def test_deterministic_outcomes(self) -> None:
        state = simulate(QuantumCircuit(2).x(1))
        assert state.measure(0) == 0
        assert state.measure(1) == 1
        assert state.norm() == pytest.approx(1.0)

    def test_bell_collapse_correlates(self) -> None:
        rng = np.random.default_rng(4)
        seen = set()
        for _ in range(40):
            state = simulate(QuantumCircuit(2).h(0).cx(0, 1))
            a = state.measure(0, rng)
            b = state.measure(1, rng)
            assert a == b
            seen.add(a)
        assert seen == {0, 1}

    def test_collapse_renormalises(self) -> None:
        rng = np.random.default_rng(1)
        state = simulate(QuantumCircuit(1).h(0))
        state.measure(0, rng)
        assert state.norm() == pytest.approx(1.0)
        assert state.nonzero_fraction() == pytest.approx(0.5)

    def test_repeated_measurement_is_stable(self) -> None:
        rng = np.random.default_rng(2)
        state = simulate(QuantumCircuit(1).h(0))
        first = state.measure(0, rng)
        for _ in range(5):
            assert state.measure(0, rng) == first

    def test_marginal_statistics(self) -> None:
        rng = np.random.default_rng(8)
        ones = sum(
            simulate(QuantumCircuit(1).h(0)).measure(0, rng) for _ in range(400)
        )
        assert 140 < ones < 260

    def test_out_of_range(self) -> None:
        with pytest.raises(SimulationError):
            StateVector(2).measure(2)


class TestReset:
    def test_reset_forces_zero(self) -> None:
        rng = np.random.default_rng(3)
        for _ in range(10):
            state = simulate(QuantumCircuit(2).h(0).cx(0, 1))
            state.reset(0, rng)
            assert state.measure(0, rng) == 0

    def test_reset_preserves_other_qubits_when_product(self) -> None:
        state = simulate(QuantumCircuit(2).x(1).h(0))
        state.reset(0)
        assert state.measure(1) == 1

    def test_entanglement_swapping_feedforward(self) -> None:
        # Measure half of a Bell pair and apply the classically controlled
        # correction: qubit 1 collapses deterministically to |0>.
        from repro.circuits.gates import Gate

        rng = np.random.default_rng(6)
        for _ in range(10):
            state = simulate(QuantumCircuit(2).h(0).cx(0, 1))
            outcome = state.measure(0, rng)
            if outcome:
                state.apply(Gate("x", (1,)))
            assert state.measure(1, rng) == 0
            assert state.norm() == pytest.approx(1.0, abs=1e-10)
