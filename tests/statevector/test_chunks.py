"""Tests for the chunked state vector (the Fig. 1 mechanics)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import FAMILIES, get_circuit
from repro.errors import SimulationError
from repro.statevector.chunks import ChunkedStateVector, chunk_pair_groups
from repro.statevector.state import simulate


class TestChunkPairGroups:
    def test_inside_gate_yields_singletons(self) -> None:
        groups = chunk_pair_groups(num_qubits=5, chunk_bits=3, gate_qubits=(0, 2))
        assert groups == [(0,), (1,), (2,), (3,)]

    def test_paper_fig1_case2_pairing(self) -> None:
        # 7-qubit circuit, 8 chunks of 16 amplitudes, gate on q6 (top bit):
        # chunks pair as (0,4), (1,5), (2,6), (3,7) - the paper's example
        # pairs chunk_1 with chunk_3 for a gate on q5.
        groups = chunk_pair_groups(7, 4, (6,))
        assert groups == [(0, 4), (1, 5), (2, 6), (3, 7)]
        groups_q5 = chunk_pair_groups(7, 4, (5,))
        assert (1, 3) in groups_q5

    def test_two_outside_qubits_make_groups_of_four(self) -> None:
        groups = chunk_pair_groups(6, 2, (2, 4))
        assert all(len(g) == 4 for g in groups)
        assert groups[0] == (0, 1, 4, 5)  # bits 0 (q2) and 2 (q4)

    def test_mixed_inside_outside(self) -> None:
        groups = chunk_pair_groups(6, 3, (1, 4))
        assert all(len(g) == 2 for g in groups)
        flattened = sorted(i for g in groups for i in g)
        assert flattened == list(range(8))

    def test_every_chunk_appears_exactly_once(self) -> None:
        groups = chunk_pair_groups(8, 3, (5, 6, 7))
        flattened = sorted(i for g in groups for i in g)
        assert flattened == list(range(32))


class TestChunkedExecution:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_chunked_equals_dense_for_every_family(self, family: str) -> None:
        circuit = get_circuit(family, 9)
        dense = simulate(circuit).amplitudes
        chunked = ChunkedStateVector(9, 4).run(circuit).to_dense()
        np.testing.assert_allclose(chunked, dense, atol=1e-12)

    @given(
        chunk_bits=st.integers(1, 6),
        seed=st.integers(0, 200),
    )
    def test_chunked_equals_dense_random_circuits(
        self, chunk_bits: int, seed: int
    ) -> None:
        rng = np.random.default_rng(seed)
        num_qubits = 6
        circuit = QuantumCircuit(num_qubits)
        for _ in range(25):
            kind = rng.integers(0, 3)
            if kind == 0:
                circuit.h(int(rng.integers(num_qubits)))
            elif kind == 1:
                a, b = rng.choice(num_qubits, size=2, replace=False)
                circuit.cx(int(a), int(b))
            else:
                circuit.rz(float(rng.uniform(-3, 3)), int(rng.integers(num_qubits)))
        dense = simulate(circuit).amplitudes
        chunked = ChunkedStateVector(num_qubits, chunk_bits).run(circuit).to_dense()
        np.testing.assert_allclose(chunked, dense, atol=1e-12)

    def test_three_qubit_gate_across_chunks(self) -> None:
        circuit = QuantumCircuit(6).h(0).h(4).h(5).ccx(4, 5, 1)
        dense = simulate(circuit).amplitudes
        chunked = ChunkedStateVector(6, 2).run(circuit).to_dense()
        np.testing.assert_allclose(chunked, dense, atol=1e-12)


class TestConversions:
    def test_from_dense_round_trip(self, rng) -> None:
        amplitudes = rng.normal(size=16) + 1j * rng.normal(size=16)
        chunked = ChunkedStateVector.from_dense(amplitudes.astype(np.complex128), 2)
        np.testing.assert_array_equal(chunked.to_dense(), amplitudes)

    def test_from_dense_rejects_non_power_of_two(self) -> None:
        with pytest.raises(SimulationError):
            ChunkedStateVector.from_dense(np.zeros(6, dtype=np.complex128), 1)

    def test_initial_state_single_nonzero_chunk(self) -> None:
        state = ChunkedStateVector(5, 2)
        assert not state.chunk_is_zero(0)
        assert all(state.chunk_is_zero(i) for i in range(1, state.num_chunks))

    def test_chunk_is_zero_with_tolerance(self) -> None:
        state = ChunkedStateVector(4, 2)
        state.chunks[1][0] = 1e-12
        assert not state.chunk_is_zero(1)
        assert state.chunk_is_zero(1, tolerance=1e-9)


class TestChunkedSampling:
    def test_matches_dense_distribution(self) -> None:
        circuit = get_circuit("qaoa", 8)
        chunked = ChunkedStateVector(8, 3).run(circuit)
        rng = np.random.default_rng(3)
        counts = chunked.sample(8000, rng)
        dense = np.abs(simulate(circuit).amplitudes) ** 2
        empirical = np.zeros(256)
        for outcome, count in counts.items():
            empirical[outcome] = count / 8000
        assert 0.5 * np.abs(empirical - dense).sum() < 0.12

    def test_basis_state_sampling(self) -> None:
        circuit = QuantumCircuit(6).x(1).x(5)
        chunked = ChunkedStateVector(6, 2).run(circuit)
        assert chunked.sample(25) == {0b100010: 25}

    def test_zero_chunks_never_sampled(self) -> None:
        circuit = get_circuit("iqp", 8)
        chunked = ChunkedStateVector(8, 3).run(circuit)
        dense = simulate(circuit).amplitudes
        support = set(np.nonzero(np.abs(dense) > 1e-12)[0])
        counts = chunked.sample(300, np.random.default_rng(1))
        assert set(counts) <= support

    def test_shots_validation(self) -> None:
        with pytest.raises(SimulationError):
            ChunkedStateVector(4, 2).sample(0)


class TestValidation:
    def test_chunk_bits_bounds(self) -> None:
        with pytest.raises(SimulationError):
            ChunkedStateVector(4, 0)
        with pytest.raises(SimulationError):
            ChunkedStateVector(4, 5)

    def test_width_limit(self) -> None:
        with pytest.raises(SimulationError):
            ChunkedStateVector(27, 10)

    def test_run_width_mismatch(self) -> None:
        with pytest.raises(SimulationError, match="width"):
            ChunkedStateVector(4, 2).run(QuantumCircuit(5).h(0))
