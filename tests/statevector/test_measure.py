"""Tests for measurement utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.errors import SimulationError
from repro.statevector.measure import (
    expectation_z,
    marginal_probability,
    most_probable,
    probabilities,
    sample_counts,
)
from repro.statevector.state import StateVector, simulate


@pytest.fixture
def bell() -> StateVector:
    return simulate(QuantumCircuit(2).h(0).cx(0, 1))


class TestProbabilities:
    def test_sum_to_one(self, bell: StateVector) -> None:
        assert probabilities(bell).sum() == pytest.approx(1.0)

    def test_accepts_raw_arrays(self) -> None:
        probs = probabilities(np.array([1.0, 0.0], dtype=np.complex128))
        np.testing.assert_allclose(probs, [1.0, 0.0])

    def test_rejects_matrices(self) -> None:
        with pytest.raises(SimulationError):
            probabilities(np.zeros((2, 2), dtype=np.complex128))


class TestSampling:
    def test_bell_counts_split_between_00_and_11(self, bell: StateVector) -> None:
        counts = sample_counts(bell, shots=2000, seed=7)
        assert set(counts) == {0b00, 0b11}
        assert counts[0b00] + counts[0b11] == 2000
        assert abs(counts[0b00] - 1000) < 150

    def test_deterministic_under_seed(self, bell: StateVector) -> None:
        assert sample_counts(bell, 100, seed=1) == sample_counts(bell, 100, seed=1)

    def test_zero_shots_rejected(self, bell: StateVector) -> None:
        with pytest.raises(SimulationError):
            sample_counts(bell, 0)

    def test_unnormalised_state_rejected(self) -> None:
        state = np.array([1.0, 1.0], dtype=np.complex128)
        with pytest.raises(SimulationError, match="normalised"):
            sample_counts(state, 10)


class TestMarginals:
    def test_bell_marginals_are_half(self, bell: StateVector) -> None:
        assert marginal_probability(bell, 0) == pytest.approx(0.5)
        assert marginal_probability(bell, 1) == pytest.approx(0.5)

    def test_basis_state_marginal(self) -> None:
        state = simulate(QuantumCircuit(3).x(1))
        assert marginal_probability(state, 1) == pytest.approx(1.0)
        assert marginal_probability(state, 0) == pytest.approx(0.0)

    def test_qubit_out_of_range(self, bell: StateVector) -> None:
        with pytest.raises(SimulationError):
            marginal_probability(bell, 5)

    def test_expectation_z_signs(self) -> None:
        zero = StateVector(1)
        one = simulate(QuantumCircuit(1).x(0))
        plus = simulate(QuantumCircuit(1).h(0))
        assert expectation_z(zero, 0) == pytest.approx(1.0)
        assert expectation_z(one, 0) == pytest.approx(-1.0)
        assert expectation_z(plus, 0) == pytest.approx(0.0, abs=1e-12)

    def test_most_probable(self) -> None:
        state = simulate(QuantumCircuit(3).x(0).x(2))
        assert most_probable(state) == 0b101
