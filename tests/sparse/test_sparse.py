"""Tests for the sparse state-vector engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import FAMILIES, get_circuit
from repro.circuits.library.extensions import ghz
from repro.core.involvement import InvolvementTracker
from repro.errors import SimulationError
from repro.sparse import SparseState, simulate_sparse
from repro.statevector.state import simulate


class TestExactness:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_matches_dense_for_every_family(self, family: str) -> None:
        circuit = get_circuit(family, 8)
        np.testing.assert_allclose(
            simulate_sparse(circuit).to_dense(),
            simulate(circuit).amplitudes,
            atol=1e-10,
        )

    @given(seed=st.integers(0, 60))
    def test_random_circuits(self, seed: int) -> None:
        rng = np.random.default_rng(seed)
        circuit = QuantumCircuit(5)
        for _ in range(25):
            kind = rng.integers(0, 4)
            if kind == 0:
                circuit.h(int(rng.integers(5)))
            elif kind == 1:
                circuit.t(int(rng.integers(5)))
            elif kind == 2:
                a, b = rng.choice(5, size=2, replace=False)
                circuit.cx(int(a), int(b))
            else:
                a, b = rng.choice(5, size=2, replace=False)
                circuit.rzz(0.7, int(a), int(b))
        np.testing.assert_allclose(
            simulate_sparse(circuit).to_dense(),
            simulate(circuit).amplitudes,
            atol=1e-10,
        )

    def test_three_qubit_gate(self) -> None:
        circuit = QuantumCircuit(4).h(0).h(1).ccx(0, 1, 3)
        np.testing.assert_allclose(
            simulate_sparse(circuit).to_dense(),
            simulate(circuit).amplitudes,
            atol=1e-12,
        )

    def test_amplitude_lookup(self) -> None:
        state = simulate_sparse(ghz(6))
        assert state.amplitude(0) == pytest.approx(1 / np.sqrt(2))
        assert state.amplitude(1) == 0.0


class TestSupportTracking:
    def test_ghz_support_stays_two(self) -> None:
        state = simulate_sparse(ghz(12))
        assert state.support_size == 2

    def test_bv_support_small(self) -> None:
        from repro.circuits.library import bv

        # After the oracle+H layers the data register is a basis state.
        state = simulate_sparse(bv(10, secret=0b101010101))
        assert state.support_size == 2  # ancilla |-> branch

    def test_support_never_exceeds_involvement_bound(self) -> None:
        for family in ("gs", "iqp", "bv", "qft"):
            circuit = get_circuit(family, 9)
            tracker = InvolvementTracker(9)
            state = SparseState(9)
            for gate in circuit:
                tracker.involve(gate)
                state.apply(gate)
                assert state.support_size <= tracker.live_amplitudes, family

    def test_support_trace_resets(self) -> None:
        circuit = QuantumCircuit(2).h(0).h(1)
        state = simulate_sparse(circuit)
        trace = state.support_trace(circuit)
        assert trace == [2, 4]

    def test_norm_preserved(self) -> None:
        state = simulate_sparse(get_circuit("qaoa", 8))
        assert state.norm() == pytest.approx(1.0, abs=1e-9)

    def test_epsilon_cleanup_keeps_support_exact(self) -> None:
        # h then h returns to |0>: the support must shrink back to 1.
        state = simulate_sparse(QuantumCircuit(1).h(0).h(0))
        assert state.support_size == 1


class TestValidation:
    def test_bad_width(self) -> None:
        with pytest.raises(SimulationError):
            SparseState(0)

    def test_width_mismatch(self) -> None:
        with pytest.raises(SimulationError):
            SparseState(2).run(QuantumCircuit(3).h(0))

    def test_gate_out_of_range(self) -> None:
        with pytest.raises(SimulationError):
            SparseState(2).apply(QuantumCircuit(3).h(2)[0])
