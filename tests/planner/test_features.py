"""Tests for the planner's static circuit analysis."""

from __future__ import annotations

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import get_circuit
from repro.errors import AnalysisError
from repro.planner import analyze_circuit


class TestBasics:
    def test_bad_bond_cap_rejected(self) -> None:
        with pytest.raises(AnalysisError, match="bond_cap"):
            analyze_circuit(QuantumCircuit(3).h(0), bond_cap=0)

    def test_empty_circuit_is_clifford_with_unit_support(self) -> None:
        features = analyze_circuit(QuantumCircuit(4))
        assert features.is_clifford
        assert features.num_gates == 0
        assert features.probe_completed
        assert features.probe_support_peak == 1

    def test_counts_and_fractions(self) -> None:
        circuit = QuantumCircuit(3).h(0).t(0).cx(0, 1).rz(0.3, 2)
        features = analyze_circuit(circuit)
        assert features.num_qubits == 3
        assert features.num_gates == 4
        assert not features.is_clifford
        assert 0.0 < features.clifford_fraction < 1.0
        assert features.two_qubit_gates == 1


class TestDeterminism:
    @pytest.mark.parametrize("family", ["bv", "qft", "w", "qaoa"])
    def test_same_circuit_same_features(self, family: str) -> None:
        circuit = get_circuit(family, 10)
        assert analyze_circuit(circuit) == analyze_circuit(circuit)


class TestCliffordDetection:
    def test_pure_clifford_families(self) -> None:
        for family in ("bv", "gs", "hlf", "ghz"):
            features = analyze_circuit(get_circuit(family, 10))
            assert features.is_clifford, family
            assert features.clifford_fraction == 1.0

    def test_mixed_circuit_not_clifford(self) -> None:
        features = analyze_circuit(get_circuit("qft", 8))
        assert not features.is_clifford
        assert features.clifford_fraction < 1.0


class TestSparseProbe:
    def test_sparse_circuit_probe_completes(self) -> None:
        # A W state keeps support O(n); the probe must see the whole run.
        features = analyze_circuit(get_circuit("w", 12))
        assert features.probe_completed
        assert features.probe_support_peak < 64
        assert features.sparse_ops == features.probe_support_ops

    def test_dense_circuit_probe_aborts_quickly(self) -> None:
        # 20 Hadamards blow the support ceiling after ~log2(ceiling) gates.
        circuit = QuantumCircuit(20)
        for q in range(20):
            circuit.h(q)
        features = analyze_circuit(circuit, probe_support_ceiling=256)
        assert not features.probe_completed
        # Fallback pricing switches to the structural bound integral.
        assert features.sparse_ops > features.probe_support_ops

    def test_support_bound_caps_at_register(self) -> None:
        features = analyze_circuit(get_circuit("qft", 9))
        assert features.support_bound_final <= 1 << 9


class TestBondProxy:
    def test_product_circuit_stays_bond_one(self) -> None:
        circuit = QuantumCircuit(6)
        for q in range(6):
            circuit.h(q)
        features = analyze_circuit(circuit)
        assert features.bond_estimate == 1
        assert not features.mps_truncates

    def test_entangling_ladder_grows_bond(self) -> None:
        circuit = QuantumCircuit(8)
        for q in range(7):
            circuit.h(q).cx(q, q + 1)
        features = analyze_circuit(circuit)
        assert features.bond_estimate > 1

    def test_cap_flags_truncation(self) -> None:
        circuit = get_circuit("rqc", 12)
        capped = analyze_circuit(circuit, bond_cap=2)
        assert capped.mps_truncates
        assert capped.bond_estimate <= 2
