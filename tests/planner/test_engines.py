"""Tests for the non-dense execution adapter (run_backend / BackendExecution)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.library import get_circuit
from repro.errors import AnalysisError, SimulationError
from repro.planner import run_backend
from repro.statevector.state import simulate


class TestDispatch:
    def test_statevector_is_not_an_adapter_backend(self) -> None:
        with pytest.raises(AnalysisError):
            run_backend(get_circuit("bv", 6), "statevector")

    def test_unknown_backend_rejected(self) -> None:
        with pytest.raises(AnalysisError):
            run_backend(get_circuit("bv", 6), "gpu")

    @pytest.mark.parametrize("backend", ["stabilizer", "sparse", "mps"])
    def test_reports_backend_and_width(self, backend: str) -> None:
        circuit = get_circuit("ghz", 6)
        execution = run_backend(circuit, backend)
        assert execution.backend == backend
        assert execution.num_qubits == 6


class TestDenseAgreement:
    @pytest.mark.parametrize("backend", ["sparse", "mps"])
    def test_to_dense_matches_reference(self, backend: str) -> None:
        circuit = get_circuit("w", 8)
        reference = simulate(circuit).amplitudes
        np.testing.assert_allclose(
            run_backend(circuit, backend).to_dense(), reference, atol=1e-10
        )

    def test_stabilizer_has_no_dense_view(self) -> None:
        execution = run_backend(get_circuit("ghz", 6), "stabilizer")
        with pytest.raises(SimulationError):
            execution.to_dense()

    def test_stabilizer_z_expectations_match_dense(self) -> None:
        circuit = get_circuit("gs", 8)
        reference = simulate(circuit).amplitudes
        probabilities = np.abs(reference) ** 2
        execution = run_backend(circuit, "stabilizer")
        for qubit in range(8):
            bits = (np.arange(probabilities.size) >> qubit) & 1
            expected = float(np.sum(probabilities * (1 - 2 * bits)))
            assert execution.expectation_z(qubit) == pytest.approx(
                expected, abs=1e-9
            )


class TestSampling:
    @pytest.mark.parametrize("backend", ["stabilizer", "sparse", "mps"])
    def test_sampling_is_seed_deterministic(self, backend: str) -> None:
        circuit = get_circuit("ghz", 6)
        execution = run_backend(circuit, backend)
        first = execution.sample_counts(64, seed=7)
        second = execution.sample_counts(64, seed=7)
        assert first == second
        assert sum(first.values()) == 64

    def test_ghz_samples_only_the_two_branches(self) -> None:
        circuit = get_circuit("ghz", 6)
        for backend in ("stabilizer", "sparse"):
            counts = run_backend(circuit, backend).sample_counts(128, seed=3)
            assert set(counts) <= {0, (1 << 6) - 1}


class TestDigest:
    @pytest.mark.parametrize("backend", ["stabilizer", "sparse", "mps"])
    def test_digest_is_stable_across_runs(self, backend: str) -> None:
        circuit = get_circuit("ghz", 7)
        first = run_backend(circuit, backend).digest()
        second = run_backend(circuit, backend).digest()
        assert first == second
        assert len(first) == 64  # hex sha256

    def test_digest_distinguishes_circuits(self) -> None:
        a = run_backend(get_circuit("w", 7), "sparse").digest()
        b = run_backend(get_circuit("ghz", 7), "sparse").digest()
        assert a != b

    def test_digest_distinguishes_backends(self) -> None:
        circuit = get_circuit("ghz", 7)
        assert (run_backend(circuit, "sparse").digest()
                != run_backend(circuit, "mps").digest())
