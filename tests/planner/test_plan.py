"""Tests for backend selection: plan() determinism, routing and rendering."""

from __future__ import annotations

import dataclasses

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import get_circuit
from repro.errors import AnalysisError
from repro.planner import DEFAULT_CONFIG, PlannerConfig, plan


class TestRouting:
    @pytest.mark.parametrize("family", ["bv", "gs", "hlf"])
    def test_clifford_families_route_to_stabilizer(self, family: str) -> None:
        chosen = plan(get_circuit(family, 16), DEFAULT_CONFIG)
        assert chosen.backend == "stabilizer"
        assert chosen.precision == "double"

    @pytest.mark.parametrize("qubits", [14, 16])
    def test_support_sparse_routes_to_sparse(self, qubits: int) -> None:
        chosen = plan(get_circuit("w", qubits), DEFAULT_CONFIG)
        assert chosen.backend == "sparse"

    @pytest.mark.parametrize("family", ["qft", "rqc", "iqp"])
    def test_dense_families_route_to_statevector(self, family: str) -> None:
        chosen = plan(get_circuit(family, 11), DEFAULT_CONFIG)
        assert chosen.backend == "statevector"
        # precision="auto" takes the norm-guarded complex64 fast path.
        assert chosen.precision == "single"

    def test_beyond_dense_limit_falls_back_to_approximate(self) -> None:
        chosen = plan(get_circuit("iqp", 31), DEFAULT_CONFIG)
        assert chosen.backend == "mps"
        assert chosen.approximate
        assert "approximate" in chosen.rationale


class TestDeterminism:
    @pytest.mark.parametrize("family", ["bv", "w", "qft"])
    def test_same_circuit_same_plan(self, family: str) -> None:
        circuit = get_circuit(family, 12)
        first = plan(circuit, DEFAULT_CONFIG)
        second = plan(circuit, DEFAULT_CONFIG)
        assert first == second
        assert first.rationale == second.rationale
        assert first.render() == second.render()


class TestConfig:
    def test_forced_backend_respected(self) -> None:
        config = dataclasses.replace(DEFAULT_CONFIG, backend="sparse")
        chosen = plan(get_circuit("bv", 10), config)
        assert chosen.backend == "sparse"
        assert "forced" in chosen.rationale

    def test_forced_infeasible_backend_raises(self) -> None:
        config = dataclasses.replace(DEFAULT_CONFIG, backend="stabilizer")
        with pytest.raises(AnalysisError):
            plan(get_circuit("qft", 8), config)

    def test_unknown_backend_rejected(self) -> None:
        with pytest.raises(AnalysisError):
            plan(get_circuit("bv", 8),
                 dataclasses.replace(DEFAULT_CONFIG, backend="gpu"))

    def test_unknown_precision_rejected(self) -> None:
        with pytest.raises(AnalysisError):
            plan(get_circuit("bv", 8),
                 dataclasses.replace(DEFAULT_CONFIG, precision="half"))

    def test_double_precision_disables_fast_path(self) -> None:
        config = dataclasses.replace(DEFAULT_CONFIG, precision="double")
        chosen = plan(get_circuit("qft", 11), config)
        assert chosen.backend == "statevector"
        assert chosen.precision == "double"

    def test_single_precision_restricts_pool_to_statevector(self) -> None:
        config = dataclasses.replace(DEFAULT_CONFIG, precision="single")
        chosen = plan(get_circuit("bv", 12), config)
        assert chosen.backend == "statevector"
        assert chosen.precision == "single"


class TestRendering:
    def test_render_contains_cost_table_and_choice(self) -> None:
        chosen = plan(get_circuit("bv", 12), DEFAULT_CONFIG)
        text = chosen.render()
        assert text.startswith("plan for bv_12 on ")
        for backend in ("stabilizer", "sparse", "statevector", "mps"):
            assert backend in text
        assert "-> chosen: stabilizer" in text
        assert "rationale:" in text

    def test_cost_for_unknown_backend_raises(self) -> None:
        chosen = plan(get_circuit("bv", 8), DEFAULT_CONFIG)
        with pytest.raises(AnalysisError):
            chosen.cost_for("qpu")


class TestNothingFeasible:
    def test_error_lists_per_backend_reasons(self) -> None:
        # 40 qubits of H+T: too wide for dense, not Clifford, and with the
        # always-feasible MPS engine removed from the candidate list there
        # is nowhere left to route.
        circuit = QuantumCircuit(40)
        for q in range(40):
            circuit.h(q).t(q)
        config = PlannerConfig(backends=("stabilizer", "statevector"))
        with pytest.raises(AnalysisError, match="no backend can execute"):
            plan(circuit, config)
