"""Tests for mixed-precision execution: complex64 fast path + norm guard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.library import get_circuit
from repro.core.simulator import QGpuSimulator
from repro.core.versions import ALL_VERSIONS
from repro.errors import SimulationError
from repro.obs import LogicalClock, Tracer
from repro.planner import DEFAULT_NORM_BOUND, norm_deviation, resolve_dtype
from repro.errors import AnalysisError

#: Amplitude agreement bound for complex64 runs of the benchmark-sized
#: circuits below: well inside what docs/planner.md documents for the
#: norm guard (the guard bound is on the 2-norm, this is per-amplitude).
AMPLITUDE_ATOL = 1e-5


class TestDtypeResolution:
    def test_known_precisions(self) -> None:
        assert resolve_dtype("single") == np.complex64
        assert resolve_dtype("double") == np.complex128

    def test_unknown_precision_raises(self) -> None:
        with pytest.raises(AnalysisError):
            resolve_dtype("half")


class TestNormDeviation:
    def test_unit_state_has_zero_deviation(self) -> None:
        state = np.zeros(8, dtype=np.complex128)
        state[0] = 1.0
        assert norm_deviation(state) == 0.0

    def test_unnormalised_state_measured(self) -> None:
        state = np.full(4, 0.5 + 0j)  # norm^2 = 1 exactly
        assert norm_deviation(state) == pytest.approx(0.0, abs=1e-15)
        assert norm_deviation(2 * state) == pytest.approx(3.0)


class TestSinglePrecisionAgreement:
    @pytest.mark.parametrize("version", ALL_VERSIONS, ids=lambda v: v.name)
    def test_all_versions_agree_with_double(self, version) -> None:
        circuit = get_circuit("qft", 8)
        double = QGpuSimulator(version=version).run(circuit)
        single = QGpuSimulator(version=version, precision="single").run(circuit)
        assert double.amplitudes.dtype == np.complex128
        assert single.precision == "single"
        assert single.amplitudes.dtype == np.complex64
        assert not single.precision_fallback
        assert single.norm_deviation is not None
        assert single.norm_deviation <= DEFAULT_NORM_BOUND
        np.testing.assert_allclose(
            single.amplitudes, double.amplitudes, atol=AMPLITUDE_ATOL
        )

    def test_double_path_is_bit_identical_and_default(self) -> None:
        circuit = get_circuit("qaoa", 8)
        first = QGpuSimulator(workers=1).run(circuit)
        second = QGpuSimulator(workers=1).run(circuit)
        assert first.precision == "double"
        assert first.amplitudes.tobytes() == second.amplitudes.tobytes()


class TestFallback:
    def test_forced_violation_reruns_at_double(self) -> None:
        tracer = Tracer(clock=LogicalClock())
        simulator = QGpuSimulator(
            precision="single", single_norm_bound=0.0, tracer=tracer
        )
        result = simulator.run(get_circuit("qft", 8))
        assert result.precision_fallback
        assert result.precision == "double"
        assert result.amplitudes.dtype == np.complex128
        assert result.norm_deviation is not None  # the single run's deviation
        assert tracer.counters.get("planner.fallbacks") == 1
        # The fallback result is the deterministic double-precision answer.
        reference = QGpuSimulator().run(get_circuit("qft", 8))
        assert result.amplitudes.tobytes() == reference.amplitudes.tobytes()

    def test_clean_single_run_does_not_count_fallback(self) -> None:
        tracer = Tracer(clock=LogicalClock())
        QGpuSimulator(precision="single", tracer=tracer).run(
            get_circuit("qft", 8)
        )
        assert tracer.counters.get("planner.fallbacks") == 0

    def test_single_rejects_checkpointing(self) -> None:
        simulator = QGpuSimulator(precision="single")
        with pytest.raises(SimulationError):
            simulator.run(
                get_circuit("qft", 8),
                checkpoint_every=4,
                checkpoint_path="unused.ckpt",
            )


class TestAutoPrecision:
    def test_auto_runs_small_dense_circuits_in_single(self) -> None:
        result = QGpuSimulator(backend="auto", precision="auto").run(
            get_circuit("qft", 9)
        )
        assert result.backend == "statevector"
        assert result.precision == "single"

    def test_explicit_double_wins_over_auto_backend(self) -> None:
        result = QGpuSimulator(backend="auto", precision="double").run(
            get_circuit("qft", 9)
        )
        assert result.precision == "double"
        assert result.amplitudes.dtype == np.complex128
