"""Tests for the planner's per-backend cost estimator."""

from __future__ import annotations

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import get_circuit
from repro.errors import AnalysisError
from repro.planner import (
    BACKENDS,
    DENSE_QUBIT_LIMIT,
    all_backend_costs,
    analyze_circuit,
    backend_cost,
)


def _features(family: str, qubits: int, **kwargs):
    return analyze_circuit(get_circuit(family, qubits), **kwargs)


class TestFeasibility:
    def test_unknown_backend_raises(self) -> None:
        with pytest.raises(AnalysisError, match="unknown backend"):
            backend_cost(_features("bv", 8), "tensorflow")

    def test_stabilizer_infeasible_for_non_clifford(self) -> None:
        cost = backend_cost(_features("qft", 8), "stabilizer")
        assert not cost.feasible
        assert "Clifford" in cost.reason

    def test_stabilizer_feasible_for_clifford(self) -> None:
        cost = backend_cost(_features("bv", 12), "stabilizer")
        assert cost.feasible
        assert cost.seconds > 0

    def test_statevector_infeasible_beyond_qubit_limit(self) -> None:
        circuit = QuantumCircuit(DENSE_QUBIT_LIMIT + 2).h(0)
        cost = backend_cost(analyze_circuit(circuit), "statevector")
        assert not cost.feasible
        assert str(DENSE_QUBIT_LIMIT) in cost.reason

    def test_every_backend_priced(self) -> None:
        costs = all_backend_costs(_features("qft", 10))
        assert tuple(c.backend for c in costs) == BACKENDS
        assert all(c.memory_bytes > 0 for c in costs)


class TestOrdering:
    def test_clifford_prefers_stabilizer(self) -> None:
        features = _features("bv", 16)
        stab = backend_cost(features, "stabilizer")
        dense = backend_cost(features, "statevector")
        assert stab.seconds < dense.seconds

    def test_sparse_support_beats_dense(self) -> None:
        features = _features("w", 14)
        sparse = backend_cost(features, "sparse")
        dense = backend_cost(features, "statevector")
        assert sparse.feasible
        assert sparse.seconds < dense.seconds

    def test_dense_support_prices_sparse_out(self) -> None:
        features = _features("qft", 12)
        sparse = backend_cost(features, "sparse")
        dense = backend_cost(features, "statevector")
        assert dense.seconds < sparse.seconds


class TestPrecision:
    def test_single_is_cheaper_and_smaller(self) -> None:
        features = _features("qft", 12)
        double = backend_cost(features, "statevector", precision="double")
        single = backend_cost(features, "statevector", precision="single")
        assert single.seconds < double.seconds
        assert single.memory_bytes == double.memory_bytes // 2


class TestApproximation:
    def test_mps_marks_truncating_runs_approximate(self) -> None:
        features = analyze_circuit(get_circuit("rqc", 12), bond_cap=2)
        cost = backend_cost(features, "mps")
        assert cost.approximate

    def test_mps_exact_when_bond_fits(self) -> None:
        circuit = QuantumCircuit(6)
        for q in range(6):
            circuit.h(q)
        cost = backend_cost(analyze_circuit(circuit), "mps")
        assert not cost.approximate
