"""Backend-equivalence edge cases at the boundaries the planner routes across.

Three seams where a wrong answer would hide behind a plausible one:

* the sparse engine's ``EPSILON`` support cutoff (does dropping
  sub-epsilon amplitudes change the answer?),
* the stabilizer tableau vs the dense engine on circuits mixing the whole
  Clifford gate set (same distribution, same Z expectations),
* MPS bond-cap truncation (is the reported ``truncation_error`` an honest
  fidelity signal?).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import get_circuit
from repro.core.simulator import QGpuSimulator
from repro.mps import simulate_mps
from repro.planner import run_backend
from repro.sparse import simulate_sparse
from repro.sparse.state import EPSILON
from repro.statevector.state import simulate


class TestSparseEpsilonBoundary:
    def test_amplitude_below_epsilon_is_dropped(self) -> None:
        theta = 2 * math.asin(EPSILON / 10)
        state = simulate_sparse(QuantumCircuit(1).ry(theta, 0))
        assert state.support_size == 1
        assert 0 in state.amplitudes

    def test_amplitude_above_epsilon_is_kept(self) -> None:
        theta = 2 * math.asin(EPSILON * 10)
        state = simulate_sparse(QuantumCircuit(1).ry(theta, 0))
        assert state.support_size == 2

    def test_exact_cancellation_shrinks_support(self) -> None:
        # H-Z-H == X: the |0> amplitude cancels exactly and must leave the
        # support, not linger as an explicit zero.
        circuit = QuantumCircuit(3)
        for q in range(3):
            circuit.h(q).z(q).h(q)
        state = simulate_sparse(circuit)
        assert state.support_size == 1
        assert state.amplitudes[0b111] == pytest.approx(1.0)

    def test_dropped_support_still_matches_dense(self) -> None:
        # The dropped amplitudes are below EPSILON, so the dense state and
        # the truncated sparse state agree to far better than EPSILON^0.5.
        circuit = QuantumCircuit(4)
        tiny = 2 * math.asin(EPSILON / 3)
        for q in range(4):
            circuit.ry(tiny, q)
        circuit.cx(0, 1).cx(2, 3)
        np.testing.assert_allclose(
            simulate_sparse(circuit).to_dense(),
            simulate(circuit).amplitudes,
            atol=1e-12,
        )


class TestStabilizerVsDense:
    def _random_clifford(self, qubits: int, gates: int, seed: int) -> QuantumCircuit:
        rng = np.random.default_rng(seed)
        circuit = QuantumCircuit(qubits, name=f"clifford_{seed}")
        for _ in range(gates):
            kind = rng.integers(0, 6)
            q = int(rng.integers(qubits))
            if kind == 0:
                circuit.h(q)
            elif kind == 1:
                circuit.s(q)
            elif kind == 2:
                circuit.sdg(q)
            elif kind == 3:
                circuit.x(q)
            elif kind == 4:
                a, b = rng.choice(qubits, size=2, replace=False)
                circuit.cx(int(a), int(b))
            else:
                a, b = rng.choice(qubits, size=2, replace=False)
                circuit.cz(int(a), int(b))
        return circuit

    @pytest.mark.parametrize("seed", range(5))
    def test_z_expectations_match_dense(self, seed: int) -> None:
        circuit = self._random_clifford(6, 40, seed)
        probabilities = np.abs(simulate(circuit).amplitudes) ** 2
        execution = run_backend(circuit, "stabilizer")
        for qubit in range(6):
            bits = (np.arange(probabilities.size) >> qubit) & 1
            expected = float(np.sum(probabilities * (1 - 2 * bits)))
            assert execution.expectation_z(qubit) == pytest.approx(
                expected, abs=1e-9
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_samples_stay_on_the_dense_support(self, seed: int) -> None:
        # Stabilizer measurement outcomes are uniform over an affine coset;
        # every sampled index must carry dense probability 2^-k, never 0.
        circuit = self._random_clifford(5, 30, seed)
        probabilities = np.abs(simulate(circuit).amplitudes) ** 2
        support = {i for i, p in enumerate(probabilities) if p > 1e-12}
        counts = run_backend(circuit, "stabilizer").sample_counts(200, seed=seed)
        assert set(counts) <= support
        uniform = 1.0 / len(support)
        for index in counts:
            assert probabilities[index] == pytest.approx(uniform, rel=1e-6)


class TestMpsTruncationFidelity:
    def test_wide_cap_is_exact_and_reports_zero_truncation(self) -> None:
        circuit = get_circuit("rqc", 10)
        state = simulate_mps(circuit, max_bond=64)
        assert state.truncation_error < 1e-12
        np.testing.assert_allclose(
            state.to_dense(), simulate(circuit).amplitudes, atol=1e-8
        )

    def test_tight_cap_reports_nonzero_truncation(self) -> None:
        circuit = get_circuit("rqc", 10)
        state = simulate_mps(circuit, max_bond=4)
        assert state.truncation_error > 0
        # Truncation only discards weight; the norm shrinks, never grows.
        assert 0 < np.linalg.norm(state.to_dense()) < 1

    def test_fidelity_recovers_as_the_cap_grows(self) -> None:
        circuit = get_circuit("rqc", 10)
        reference = simulate(circuit).amplitudes

        def fidelity(cap: int) -> float:
            dense = simulate_mps(circuit, max_bond=cap).to_dense()
            dense = dense / np.linalg.norm(dense)
            return float(abs(np.vdot(dense, reference)) ** 2)

        assert fidelity(4) < fidelity(16) < fidelity(32)
        assert fidelity(32) == pytest.approx(1.0, abs=1e-9)

    def test_simulator_surfaces_truncation_error(self) -> None:
        circuit = get_circuit("rqc", 10)
        result = QGpuSimulator(backend="mps", max_bond=4).run(circuit)
        assert result.backend == "mps"
        assert result.truncation_error > 0
        exact = QGpuSimulator(backend="mps", max_bond=64).run(circuit)
        assert exact.truncation_error < 1e-12
