"""Tests for the Aaronson-Gottesman stabilizer engine.

Cross-validation strategy: the dense state of a Clifford circuit must be a
+1 eigenvector of every tableau stabilizer (and the measurement statistics
must match the dense probabilities).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import bv, get_circuit
from repro.errors import SimulationError
from repro.stabilizer import (
    CLIFFORD_GATES,
    StabilizerState,
    is_clifford_circuit,
    simulate_clifford,
)
from repro.statevector.expectation import PauliString, apply_pauli
from repro.statevector.state import simulate


def assert_stabilizes(circuit: QuantumCircuit) -> None:
    """Every tableau stabilizer must fix the dense state with its sign."""
    tableau = simulate_clifford(circuit)
    dense = simulate(circuit).amplitudes
    for sign, labels in tableau.stabilizer_strings():
        string = PauliString(
            tuple((q, label) for q, label in enumerate(labels) if label != "I")
        )
        np.testing.assert_allclose(
            apply_pauli(dense, string), sign * dense, atol=1e-10,
            err_msg=f"{circuit.name}: stabilizer {sign:+d}{labels}",
        )


def random_clifford_circuit(seed: int, num_qubits: int = 5, gates: int = 40) -> QuantumCircuit:
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits)
    singles = ["h", "s", "sdg", "x", "y", "z"]
    for _ in range(gates):
        kind = rng.integers(0, 9)
        if kind < 6:
            circuit.add(singles[kind], int(rng.integers(num_qubits)))
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            name = ("cx", "cz", "swap")[kind - 6]
            circuit.add(name, int(a), int(b))
    return circuit


class TestCrossValidation:
    @pytest.mark.parametrize("family", ["gs", "hlf"])
    def test_clifford_benchmarks(self, family: str) -> None:
        assert_stabilizes(get_circuit(family, 8))

    def test_bv_is_clifford(self) -> None:
        circuit = bv(8, secret=0b1010101)
        assert is_clifford_circuit(circuit)
        assert_stabilizes(circuit)

    @given(seed=st.integers(0, 80))
    def test_random_clifford_circuits(self, seed: int) -> None:
        assert_stabilizes(random_clifford_circuit(seed))

    def test_bell_stabilizers(self) -> None:
        tableau = simulate_clifford(QuantumCircuit(2).h(0).cx(0, 1))
        assert set(tableau.stabilizer_strings()) == {(1, "XX"), (1, "ZZ")}

    def test_minus_state_sign(self) -> None:
        tableau = simulate_clifford(QuantumCircuit(1).x(0).h(0))
        assert tableau.stabilizer_strings() == [(-1, "X")]


class TestMeasurement:
    def test_deterministic_outcomes(self) -> None:
        tableau = simulate_clifford(QuantumCircuit(2).x(1))
        assert tableau.measure(0) == 0
        assert tableau.measure(1) == 1

    def test_bell_correlations(self) -> None:
        rng = np.random.default_rng(7)
        outcomes = set()
        for _ in range(50):
            tableau = simulate_clifford(QuantumCircuit(2).h(0).cx(0, 1))
            a, b = tableau.measure(0, rng), tableau.measure(1, rng)
            assert a == b
            outcomes.add(a)
        assert outcomes == {0, 1}  # both branches occur

    def test_plus_state_marginal_is_fair(self) -> None:
        rng = np.random.default_rng(11)
        ones = sum(
            simulate_clifford(QuantumCircuit(1).h(0)).measure(0, rng)
            for _ in range(400)
        )
        assert 140 < ones < 260

    def test_collapse_is_sticky(self) -> None:
        rng = np.random.default_rng(3)
        tableau = simulate_clifford(QuantumCircuit(1).h(0))
        first = tableau.measure(0, rng)
        for _ in range(5):
            assert tableau.measure(0, rng) == first

    def test_measure_all_matches_dense_support(self) -> None:
        circuit = get_circuit("gs", 6)
        dense_probs = np.abs(simulate(circuit).amplitudes) ** 2
        rng = np.random.default_rng(5)
        for _ in range(20):
            outcome = simulate_clifford(circuit).measure_all(rng)
            assert dense_probs[outcome] > 1e-12

    def test_expectation_z(self) -> None:
        assert simulate_clifford(QuantumCircuit(1).x(0)).expectation_z(0) == -1.0
        assert StabilizerState(1).expectation_z(0) == 1.0
        assert simulate_clifford(QuantumCircuit(1).h(0)).expectation_z(0) == 0.0


class TestValidation:
    def test_non_clifford_gate_rejected(self) -> None:
        with pytest.raises(SimulationError, match="not Clifford"):
            StabilizerState(1).apply(QuantumCircuit(1).t(0)[0])

    def test_non_clifford_circuit_rejected_with_names(self) -> None:
        circuit = QuantumCircuit(2).h(0).t(0).rzz(0.3, 0, 1)
        with pytest.raises(SimulationError, match="rzz"):
            simulate_clifford(circuit)

    def test_gate_set_contents(self) -> None:
        assert "cx" in CLIFFORD_GATES and "t" not in CLIFFORD_GATES

    def test_out_of_range_qubit(self) -> None:
        with pytest.raises(SimulationError):
            StabilizerState(2).measure(5)

    def test_copy_is_independent(self) -> None:
        original = simulate_clifford(QuantumCircuit(1).h(0))
        clone = original.copy()
        clone.measure(0, np.random.default_rng(0))
        assert np.any(original.x[1:, 0])  # original still superposed
