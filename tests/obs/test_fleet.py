"""Tests for the fleet analytics (obs/fleet.py)."""

from __future__ import annotations

import math

import pytest

from repro.circuits.library import get_circuit
from repro.core.detailed import DetailedExecutor
from repro.core.versions import OVERLAP
from repro.hardware.machine import Machine
from repro.hardware.specs import MULTI_V100_MACHINE
from repro.hardware.topology import HOST
from repro.hardware.trace import to_chrome_trace
from repro.obs.analyze import stage_rollups
from repro.obs.export import spans_from_events
from repro.obs.fleet import (
    DEFAULT_DEVICE,
    FleetAnalysis,
    fleet_analysis,
    fleet_gauges,
    render_fleet,
    span_device,
)
from repro.obs.tracer import Span


def _span(
    index: int,
    lane: str,
    stage: str | None,
    start: float,
    end: float,
    **attrs,
) -> Span:
    return Span(
        index=index,
        name=f"s{index}",
        stage=stage,
        lane=lane,
        start=start,
        end=end,
        parent=None,
        attrs=attrs,
    )


@pytest.fixture(scope="module")
def des_spans():
    executor = DetailedExecutor(
        Machine(MULTI_V100_MACHINE),
        chunk_bits=14,
        capacity_bytes=1 << 22,
        devices=4,
    )
    run = executor.execute(get_circuit("qft", 20), OVERLAP)
    spans = spans_from_events(to_chrome_trace(run.timeline, time_scale=1.0))
    return run, spans


class TestSpanDevice:
    def test_explicit_attr_wins(self) -> None:
        span = _span(0, "gpu2:h2d", "h2d", 0, 1, device="gpu7")
        assert span_device(span) == "gpu7"

    def test_namespaced_lane(self) -> None:
        assert span_device(_span(0, "gpu3:d2h", "d2h", 0, 1)) == "gpu3"

    def test_legacy_lane_maps_to_default_device(self) -> None:
        assert span_device(_span(0, "h2d", "h2d", 0, 1)) == DEFAULT_DEVICE

    def test_non_device_lane_is_none(self) -> None:
        assert span_device(_span(0, "service", None, 0, 1)) is None


class TestSyntheticFleet:
    def test_empty_spans(self) -> None:
        assert fleet_analysis([]) == FleetAnalysis()

    def test_busy_is_interval_union(self) -> None:
        # Two overlapping spans on one device: busy counts the union once.
        spans = [
            _span(0, "gpu0:h2d", "h2d", 0.0, 2.0),
            _span(1, "gpu0:gpu", "compute", 1.0, 3.0),
        ]
        fa = fleet_analysis(spans)
        gpu0 = fa.device("gpu0")
        assert gpu0 is not None
        assert gpu0.busy == pytest.approx(3.0)
        assert gpu0.idle == pytest.approx(0.0)

    def test_comm_matrix_from_attrs(self) -> None:
        spans = [
            _span(0, "gpu0:h2d", "h2d", 0, 1, bytes=100, src=HOST,
                  dst="gpu0", link="pcie/host-gpu0"),
            _span(1, "gpu1:h2d", "h2d", 0, 1, bytes=50, src=HOST,
                  dst="gpu1", link="pcie/host-gpu1"),
            _span(2, "gpu0:d2h", "d2h", 1, 2, bytes=100, src="gpu0",
                  dst=HOST, link="pcie/host-gpu0"),
        ]
        fa = fleet_analysis(spans)
        assert fa.total_bytes == 250
        assert fa.comm_matrix[HOST] == {"gpu0": 100, "gpu1": 50}
        assert fa.comm_matrix["gpu0"] == {HOST: 100}
        by_id = {link.link_id: link for link in fa.links}
        assert by_id["pcie/host-gpu0"].bytes_total == 200
        assert by_id["pcie/host-gpu0"].transfers == 2

    def test_direction_inferred_without_endpoints(self) -> None:
        # No src/dst attrs: the stage implies host->device / device->host.
        spans = [
            _span(0, "gpu1:h2d", "h2d", 0, 1, bytes=10),
            _span(1, "gpu1:d2h", "d2h", 1, 2, bytes=10),
        ]
        fa = fleet_analysis(spans)
        assert fa.comm_matrix == {HOST: {"gpu1": 10}, "gpu1": {HOST: 10}}

    def test_imbalance_is_max_over_mean(self) -> None:
        spans = [
            _span(0, "gpu0:gpu", "compute", 0.0, 3.0),
            _span(1, "gpu1:gpu", "compute", 0.0, 1.0),
        ]
        fa = fleet_analysis(spans)
        assert fa.imbalance == pytest.approx(3.0 / 2.0)

    def test_link_utilization_and_timeline(self) -> None:
        spans = [
            _span(0, "gpu0:h2d", "h2d", 0.0, 1.0, bytes=1,
                  link="pcie/host-gpu0"),
            _span(1, "gpu0:gpu", "compute", 1.0, 4.0),
        ]
        fa = fleet_analysis(spans, buckets=4)
        link = fa.links[0]
        assert link.utilization == pytest.approx(0.25)
        assert link.timeline == pytest.approx([1.0, 0.0, 0.0, 0.0])


class TestDesIdentity:
    def test_comm_matrix_matches_executor_exactly(self, des_spans) -> None:
        run, spans = des_spans
        fa = fleet_analysis(spans)
        assert fa.total_bytes == run.bytes_h2d + run.bytes_d2h
        flat = {
            (src, dst): moved
            for src, row in fa.comm_matrix.items()
            for dst, moved in row.items()
        }
        assert flat == dict(run.transfers)

    def test_link_bytes_match_executor(self, des_spans) -> None:
        run, spans = des_spans
        fa = fleet_analysis(spans)
        assert {
            link.link_id: link.bytes_total for link in fa.links
        } == dict(run.link_bytes)

    def test_device_stages_reconcile_with_rollup(self, des_spans) -> None:
        _, spans = des_spans
        fa = fleet_analysis(spans)
        rollup = {s: r.total for s, r in stage_rollups(spans).items()}
        summed: dict[str, float] = {}
        for stats in fa.devices:
            for stage, total in stats.stages.items():
                summed[stage] = summed.get(stage, 0.0) + total
        for stage, total in summed.items():
            assert math.isclose(total, rollup[stage], rel_tol=1e-9)

    def test_busy_bounded_by_wall(self, des_spans) -> None:
        _, spans = des_spans
        fa = fleet_analysis(spans)
        for stats in fa.devices:
            assert 0.0 < stats.busy <= fa.wall * (1 + 1e-12)
            assert stats.busy + stats.idle == pytest.approx(fa.wall)


class TestOutputs:
    def test_gauges_are_flat_floats(self, des_spans) -> None:
        _, spans = des_spans
        gauges = fleet_gauges(fleet_analysis(spans))
        assert all(isinstance(v, (int, float)) for v in gauges.values())
        assert gauges["fleet_devices"] == 4
        assert gauges["fleet_comm_bytes_total"] > 0
        assert any(k.startswith("fleet_device_busy_seconds_") for k in gauges)
        assert any(k.startswith("fleet_link_bytes_") for k in gauges)

    def test_render_mentions_every_device_and_link(self, des_spans) -> None:
        _, spans = des_spans
        fa = fleet_analysis(spans)
        text = render_fleet(fa)
        for stats in fa.devices:
            assert stats.device in text
        for link in fa.links:
            assert link.link_id in text
        assert "imbalance" in text

    def test_to_dict_round_trips_through_json(self, des_spans) -> None:
        import json

        _, spans = des_spans
        payload = fleet_analysis(spans).to_dict()
        assert json.loads(json.dumps(payload)) == payload
