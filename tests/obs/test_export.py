"""Chrome-trace export, round-trip, and stage summaries."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    LogicalClock,
    Span,
    Tracer,
    load_trace_events,
    render_summary,
    spans_from_events,
    summarize,
    trace_events,
    trace_json,
    write_trace,
)


def _sample_tracer() -> Tracer:
    tracer = Tracer(clock=LogicalClock())
    tracer.counters.count("kernels.dense", 3)
    with tracer.span("run", circuit="bv_4"):
        with tracer.span("reorder", stage="transpile"):
            pass
        with tracer.span("apply:h", stage="compute", gate=0):
            with tracer.span("h2d", stage="h2d", chunk=1):
                pass
    return tracer


def test_metadata_events_present():
    events = trace_events(_sample_tracer(), process_name="unit")
    meta = {e["name"]: e for e in events if e["ph"] == "M"}
    assert meta["process_name"]["args"]["name"] == "unit"
    assert meta["clock"]["args"]["deterministic"] is True
    assert meta["counters"]["args"] == {"kernels.dense": 3}
    assert meta["thread_name"]["args"]["name"] == "main"


def test_x_events_carry_span_ids_and_stages():
    events = [e for e in trace_events(_sample_tracer()) if e["ph"] == "X"]
    by_name = {e["name"]: e for e in events}
    assert by_name["run"]["args"]["span"] == 0
    assert "parent" not in by_name["run"]["args"]
    assert by_name["h2d"]["args"]["stage"] == "h2d"
    assert by_name["h2d"]["args"]["parent"] == by_name["apply:h"]["args"]["span"]
    assert by_name["apply:h"]["args"]["gate"] == 0
    # Complete events: non-negative timestamps and durations, pid 1.
    for event in events:
        assert event["pid"] == 1
        assert event["ts"] >= 0
        assert event["dur"] >= 0


def test_trace_json_is_canonical():
    tracer = _sample_tracer()
    text = trace_json(tracer)
    assert text.endswith("\n")
    payload = json.loads(text)
    assert "traceEvents" in payload
    assert text == trace_json(tracer)


def test_write_and_load_round_trip(tmp_path):
    tracer = _sample_tracer()
    path = tmp_path / "run.trace.json"
    written = write_trace(tracer, path)
    assert written == len(path.read_text())
    events = load_trace_events(path)
    spans = spans_from_events(events)
    original = {(s.index, s.name, s.stage, s.parent, s.lane) for s in tracer.spans}
    restored = {(s.index, s.name, s.stage, s.parent, s.lane) for s in spans}
    assert restored == original


def test_load_rejects_garbage(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(ObservabilityError):
        load_trace_events(missing)
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ObservabilityError):
        load_trace_events(bad)
    wrong = tmp_path / "wrong.json"
    wrong.write_text('{"other": 1}')
    with pytest.raises(ObservabilityError):
        load_trace_events(wrong)


def test_spans_from_des_style_events():
    # DES exporter events have no args; the resource rides in "cat".
    events = [
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1, "args": {"name": "gpu"}},
        {"name": "g0/comp", "cat": "gpu", "ph": "X", "pid": 1, "tid": 1,
         "ts": 0.0, "dur": 2.0},
    ]
    (span,) = spans_from_events(events)
    assert span.stage == "compute"
    assert span.lane == "gpu"
    assert span.duration == 2.0


def test_summary_identity_stages_plus_untraced_equals_wall():
    tracer = _sample_tracer()
    summary = summarize(tracer.spans)
    assert summary.wall == pytest.approx(
        sum(summary.stages.values()) + summary.untraced
    )
    assert summary.span_count == 4
    assert summary.lanes == ["main"]


def test_summary_self_time_attribution():
    # parent [0, 10] stage=compute with child [2, 5] stage=h2d: compute
    # gets 7 (self time), h2d gets 3.
    spans = [
        Span(index=0, name="p", stage="compute", lane="main",
             start=0.0, end=10.0, parent=None),
        Span(index=1, name="c", stage="h2d", lane="main",
             start=2.0, end=5.0, parent=0),
    ]
    summary = summarize(spans)
    assert summary.stages["compute"] == pytest.approx(7.0)
    assert summary.stages["h2d"] == pytest.approx(3.0)
    assert summary.untraced == pytest.approx(0.0)


def test_summarize_empty():
    summary = summarize([])
    assert summary.wall == 0.0
    assert summary.span_count == 0


def test_render_summary_shows_core_stages_and_wall():
    text = render_summary(summarize(_sample_tracer().spans), unit="ticks")
    for stage in ("h2d", "compute", "codec", "d2h"):
        assert stage in text
    assert "wall total" in text
    assert "(untraced)" in text
    assert "ticks total" in text


class TestEmptyAndZeroDurationTraces:
    def test_render_summary_of_empty_trace_does_not_divide_by_zero(self):
        # Regression: an empty trace has wall == 0; rendering must not
        # raise ZeroDivisionError and must show an all-zero breakdown.
        text = render_summary(summarize([]))
        assert "wall total" in text
        assert "0" in text

    def test_render_summary_of_zero_duration_spans(self):
        spans = [Span(index=0, name="p", stage="compute", lane="main",
                      start=5.0, end=5.0, parent=None)]
        summary = summarize(spans)
        assert summary.wall == 0.0
        text = render_summary(summary)
        assert "compute" in text

    def test_empty_trace_file_summary_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "empty.trace.json"
        path.write_text('{"traceEvents": []}\n')
        assert main(["trace", "summary", str(path)]) == 0
        captured = capsys.readouterr()
        assert "no spans" in captured.err
        assert "wall total" in captured.out


class TestMetadataHelpers:
    def test_clock_counters_and_process_name_round_trip(self):
        from repro.obs import (
            trace_clock_deterministic,
            trace_counters_snapshot,
            trace_process_name,
        )

        events = trace_events(_sample_tracer(), process_name="unit")
        assert trace_clock_deterministic(events) is True
        assert trace_counters_snapshot(events) == {"kernels.dense": 3}
        assert trace_process_name(events) == "unit"
        assert trace_clock_deterministic([]) is False
        assert trace_counters_snapshot([]) == {}
        assert trace_process_name([]) == "repro"


class TestMultiWorkerRoundTrip:
    @pytest.fixture(scope="class")
    def worker_tracer(self) -> Tracer:
        """A real 4-worker functional run, traced on wall clock."""
        from repro.circuits.library import get_circuit
        from repro.core.simulator import QGpuSimulator

        tracer = Tracer()
        # Wide enough that dense sweeps clear the engine's inline-serial
        # work floor and fan out to the pool threads.
        QGpuSimulator(workers=4, chunk_bits=10, tracer=tracer).run(
            get_circuit("qft", 19)
        )
        return tracer

    def test_four_worker_trace_is_multi_lane_and_validates(
        self, worker_tracer, tmp_path
    ):
        from repro.obs import validate_trace_file, write_trace

        lanes = worker_tracer.lanes()
        workers = [lane for lane in lanes if lane.startswith("chunk-worker")]
        assert len(workers) >= 2, lanes
        path = tmp_path / "workers.trace.json"
        write_trace(worker_tracer, path)
        checked = validate_trace_file(path)
        assert checked == len(worker_tracer.spans)

    def test_export_parse_export_is_stable(self, worker_tracer, tmp_path):
        from repro.obs import (
            events_from_spans,
            trace_clock_deterministic,
            trace_counters_snapshot,
            trace_process_name,
        )

        def re_export(events):
            rebuilt = events_from_spans(
                spans_from_events(events),
                counters=trace_counters_snapshot(events),
                deterministic=trace_clock_deterministic(events),
                process_name=trace_process_name(events),
            )
            return json.dumps({"traceEvents": rebuilt}, sort_keys=True,
                              separators=(",", ":"))

        events = trace_events(worker_tracer)
        first = re_export(events)
        second = re_export(json.loads(first)["traceEvents"])
        assert first == second

    def test_logical_clock_round_trip_is_byte_identical(self):
        from repro.obs import (
            events_from_spans,
            trace_clock_deterministic,
            trace_counters_snapshot,
            trace_process_name,
        )

        tracer = _sample_tracer()
        text = trace_json(tracer, process_name="unit")
        events = json.loads(text)["traceEvents"]
        rebuilt = events_from_spans(
            spans_from_events(events),
            counters=trace_counters_snapshot(events),
            deterministic=trace_clock_deterministic(events),
            process_name=trace_process_name(events),
        )
        assert (json.dumps({"traceEvents": rebuilt}, sort_keys=True,
                           separators=(",", ":")) + "\n") == text
