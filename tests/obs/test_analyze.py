"""Trace analytics: rollups, critical path, overlap efficiency, bottlenecks."""

from __future__ import annotations

import pytest

from repro.obs import (
    Span,
    analyze,
    critical_path,
    overlap_stats,
    render_analysis,
    render_critical_path,
    stage_rollups,
    top_bottlenecks,
)
from repro.obs.analyze import UNATTRIBUTED


def _span(index, name, stage, lane, start, end, parent=None) -> Span:
    return Span(index=index, name=name, stage=stage, lane=lane,
                start=float(start), end=float(end), parent=parent)


def _nested_tree() -> list[Span]:
    """root [0,20] > gate A [1,9] > h2d [2,4]; gate B [10,18]."""
    return [
        _span(0, "run", None, "main", 0, 20),
        _span(1, "apply:a", "compute", "main", 1, 9, parent=0),
        _span(2, "h2d", "h2d", "main", 2, 4, parent=1),
        _span(3, "apply:b", "compute", "main", 10, 18, parent=0),
    ]


class TestStageRollups:
    def test_self_vs_total(self):
        rollups = stage_rollups(_nested_tree())
        assert rollups["compute"].total == pytest.approx(16.0)
        assert rollups["compute"].self_time == pytest.approx(14.0)
        assert rollups["compute"].count == 2
        assert rollups["h2d"].self_time == pytest.approx(2.0)

    def test_taxonomy_order(self):
        assert list(stage_rollups(_nested_tree())) == ["h2d", "compute"]

    def test_empty(self):
        assert stage_rollups([]) == {}


class TestCriticalPath:
    def test_segments_tile_the_root_exactly(self):
        path = critical_path(_nested_tree())
        assert path.root_name == "run"
        assert path.duration == pytest.approx(20.0)
        total = sum(s.duration for s in path.segments)
        assert total == pytest.approx(path.duration)
        # Segments abut in time order.
        for before, after in zip(path.segments, path.segments[1:]):
            assert after.start == pytest.approx(before.end)
        assert path.segments[0].start == pytest.approx(path.root_start)
        assert path.segments[-1].end == pytest.approx(path.root_end)

    def test_stage_totals_sum_to_duration(self):
        path = critical_path(_nested_tree())
        totals = path.stage_totals()
        assert sum(totals.values()) == pytest.approx(path.duration)
        # root self time: [0,1] + [9,10] + [18,20] = 4
        assert totals[UNATTRIBUTED] == pytest.approx(4.0)
        # compute: A minus its child (2) + B (8) = 12 + 2 h2d
        assert totals["compute"] == pytest.approx(14.0)
        assert totals["h2d"] == pytest.approx(2.0)

    def test_parallel_sibling_off_critical_path(self):
        # Two workers under one gate: worker-2 ends later, so worker-1 is
        # entirely overlapped and contributes nothing.
        spans = [
            _span(0, "gate", "compute", "main", 0, 10),
            _span(1, "w1", "compute", "chunk-worker_0", 1, 5, parent=0),
            _span(2, "w2", "compute", "chunk-worker_1", 2, 9, parent=0),
        ]
        path = critical_path(spans)
        names = {s.name for s in path.segments}
        assert "w1" not in names
        assert "w2" in names
        assert sum(s.duration for s in path.segments) == pytest.approx(10.0)

    def test_flat_trace_gets_virtual_root(self):
        spans = [
            _span(0, "h2d:0", "h2d", "h2d", 0, 4),
            _span(1, "comp:0", "compute", "gpu", 4, 6),
            _span(2, "d2h:0", "d2h", "d2h", 6, 9),
        ]
        path = critical_path(spans)
        assert path.root_name == "<trace>"
        assert path.duration == pytest.approx(9.0)
        assert sum(path.stage_totals().values()) == pytest.approx(9.0)

    def test_empty(self):
        path = critical_path([])
        assert path.segments == []
        assert path.duration == 0.0
        assert path.stage_totals() == {}

    def test_render(self):
        text = render_critical_path(critical_path(_nested_tree()), unit="ticks")
        assert "coverage" in text
        assert "compute" in text
        assert render_critical_path(critical_path([])) == "critical path: empty trace"


class TestOverlapStats:
    def test_cross_lane_compute_hides_transfer(self):
        spans = [
            _span(0, "h2d:1", "h2d", "h2d-lane", 0, 10),
            _span(1, "comp:0", "compute", "gpu-lane", 4, 8),
        ]
        stats = overlap_stats(spans)
        assert stats.transfer == pytest.approx(10.0)
        assert stats.hidden == pytest.approx(4.0)
        assert stats.efficiency == pytest.approx(0.4)
        assert stats.exposed == pytest.approx(6.0)

    def test_same_lane_compute_does_not_count_as_overlap(self):
        # Functional traces nest h2d inside the gate's compute span on the
        # same lane - that is serialization, not overlap.
        spans = [
            _span(0, "apply", "compute", "main", 0, 10),
            _span(1, "h2d", "h2d", "main", 2, 4, parent=0),
        ]
        stats = overlap_stats(spans)
        assert stats.hidden == 0.0
        assert stats.efficiency == 0.0

    def test_overlapping_compute_lanes_count_once(self):
        spans = [
            _span(0, "h2d", "h2d", "io", 0, 4),
            _span(1, "c1", "compute", "g1", 0, 3),
            _span(2, "c2", "compute", "g2", 1, 4),
        ]
        stats = overlap_stats(spans)
        assert stats.hidden == pytest.approx(4.0)
        assert stats.efficiency == pytest.approx(1.0)

    def test_no_transfers_means_no_rating(self):
        spans = [_span(0, "c", "compute", "main", 0, 5)]
        assert overlap_stats(spans).efficiency is None


class TestBottlenecks:
    def test_aggregates_by_name_and_stage(self):
        spans = _nested_tree()
        top = top_bottlenecks(spans, k=2)
        assert top[0].name == "apply:a" or top[0].name == "apply:b"
        # apply:a self 6 + apply:b self 8 aggregate separately by name.
        by_name = {b.name: b for b in top_bottlenecks(spans, k=10)}
        assert by_name["apply:b"].self_time == pytest.approx(8.0)
        assert by_name["apply:a"].self_time == pytest.approx(6.0)
        assert by_name["run"].self_time == pytest.approx(4.0)

    def test_k_bounds(self):
        assert top_bottlenecks(_nested_tree(), k=0) == []
        assert len(top_bottlenecks(_nested_tree(), k=100)) == 4


class TestAnalyze:
    def test_full_analysis_dict(self):
        analysis = analyze(_nested_tree(), top=3)
        payload = analysis.to_dict()
        assert payload["span_count"] == 4
        assert payload["wall"] == pytest.approx(20.0)
        assert payload["critical_path"]["duration"] == pytest.approx(20.0)
        assert len(payload["bottlenecks"]) == 3
        assert payload["overlap"]["efficiency"] == 0.0

    def test_empty_analysis(self):
        analysis = analyze([])
        assert analysis.span_count == 0
        assert "nothing to analyze" in render_analysis(analysis)

    def test_render_mentions_everything(self):
        text = render_analysis(analyze(_nested_tree()), unit="ticks")
        assert "critical path" in text
        assert "overlap efficiency" in text
        assert "bottlenecks" in text
