"""CounterRegistry semantics and canonical JSON export."""

from __future__ import annotations

import json
import threading

from repro.obs import CounterRegistry


def test_count_and_get():
    counters = CounterRegistry()
    counters.count("kernels.dense")
    counters.count("kernels.dense", 4)
    assert counters.get("kernels.dense") == 5
    assert counters.get("missing") == 0


def test_add_is_alias_of_count():
    counters = CounterRegistry()
    counters.add("bytes.moved_raw", 1024)
    assert counters.get("bytes.moved_raw") == 1024


def test_observe_max_keeps_peak():
    counters = CounterRegistry()
    counters.observe_max("queue.depth", 3)
    counters.observe_max("queue.depth", 7)
    counters.observe_max("queue.depth", 5)
    assert counters.get("queue.depth") == 7


def test_merge_mapping_and_registry():
    a = CounterRegistry()
    a.count("x", 1)
    b = CounterRegistry()
    b.count("x", 2)
    b.count("y", 3)
    a.merge(b)
    a.merge({"z": 4})
    assert a.snapshot() == {"x": 3, "y": 3, "z": 4}


def test_snapshot_sorted_and_detached():
    counters = CounterRegistry()
    counters.count("zeta")
    counters.count("alpha")
    snapshot = counters.snapshot()
    assert list(snapshot) == ["alpha", "zeta"]
    snapshot["alpha"] = 99
    assert counters.get("alpha") == 1


def test_clear():
    counters = CounterRegistry()
    counters.count("x")
    counters.clear()
    assert counters.snapshot() == {}


def test_to_json_deterministic():
    counters = CounterRegistry()
    counters.count("b", 2)
    counters.count("a", 1)
    text = counters.to_json({"run": "bv_8"})
    assert text.endswith("\n")
    payload = json.loads(text)
    assert payload["counters"] == {"a": 1, "b": 2}
    assert payload["run"] == "bv_8"
    assert text == counters.to_json({"run": "bv_8"})


def test_thread_safety_under_contention():
    counters = CounterRegistry()

    def work():
        for _ in range(1000):
            counters.count("hits")

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counters.get("hits") == 8000
