"""Model-vs-measured drift reports."""

from __future__ import annotations

import pytest

from repro.circuits.library import get_circuit
from repro.core.simulator import QGpuSimulator
from repro.core.versions import VERSIONS_BY_NAME
from repro.hardware.specs import MACHINES
from repro.obs import (
    DRIFT_STAGES,
    Span,
    drift_report,
    measured_breakdown,
    predicted_breakdown,
)


def _span(index, name, stage, lane, start, end, parent=None) -> Span:
    return Span(index=index, name=name, stage=stage, lane=lane,
                start=float(start), end=float(end), parent=parent)


class TestBreakdowns:
    def test_predicted_uses_busy_not_exposed_time(self):
        machine = MACHINES["p100"]
        circuit = get_circuit("bv", 32, seed=0)
        version = VERSIONS_BY_NAME["Overlap"]
        timing = QGpuSimulator(machine=machine, version=version).estimate(circuit)
        predicted = predicted_breakdown(timing, machine)
        assert set(predicted) == set(DRIFT_STAGES)
        # Busy transfer time = bytes / bandwidth, independent of how much
        # of it overlap hid.
        assert predicted["h2d"] == pytest.approx(
            timing.bytes_h2d / machine.link.bandwidth_per_direction
        )
        assert predicted["compute"] == pytest.approx(
            timing.cpu_seconds + timing.gpu_seconds
        )
        assert predicted["h2d"] > 0

    def test_measured_restricts_to_drift_stages(self):
        spans = [
            _span(0, "h2d", "h2d", "io", 0, 3),
            _span(1, "comp", "compute", "gpu", 3, 5),
            _span(2, "ckpt", "checkpoint", "main", 5, 9),
        ]
        measured = measured_breakdown(spans)
        assert set(measured) == set(DRIFT_STAGES)
        assert measured["h2d"] == pytest.approx(3.0)
        assert measured["compute"] == pytest.approx(2.0)
        assert measured["codec"] == 0.0


class TestDriftReport:
    def test_identical_shapes_pass_even_with_unit_mismatch(self):
        predicted = {"h2d": 1.0, "compute": 2.0, "codec": 0.0, "d2h": 1.0}
        measured = {stage: value * 1e6 for stage, value in predicted.items()}
        report = drift_report(predicted, measured, tolerance=0.01)
        assert report.passed
        assert report.max_drift == pytest.approx(0.0)

    def test_divergent_shapes_fail_the_gate(self):
        predicted = {"h2d": 5.0, "compute": 1.0, "codec": 0.0, "d2h": 4.0}
        measured = {"h2d": 1.0, "compute": 8.0, "codec": 0.0, "d2h": 1.0}
        report = drift_report(predicted, measured, tolerance=0.15)
        assert not report.passed
        assert report.worst_stage == "compute"
        assert report.max_drift > 0.5

    def test_empty_measured_side_fails_loudly_not_crashing(self):
        predicted = {"h2d": 1.0, "compute": 3.0, "codec": 0.0, "d2h": 1.0}
        report = drift_report(predicted, {}, tolerance=0.15)
        assert not report.passed
        assert report.max_drift == pytest.approx(0.6)  # compute share

    def test_both_empty_passes_trivially(self):
        assert drift_report({}, {}).passed

    def test_to_dict_and_render(self):
        report = drift_report(
            {"h2d": 1.0, "compute": 1.0, "codec": 0.0, "d2h": 1.0},
            {"h2d": 1.0, "compute": 1.2, "codec": 0.0, "d2h": 1.0},
            tolerance=0.2,
            context={"circuit": "bv_32"},
        )
        payload = report.to_dict()
        assert payload["passed"] is True
        assert payload["context"]["circuit"] == "bv_32"
        assert set(payload["stages"]) == set(DRIFT_STAGES)
        text = report.render()
        assert "bv_32" in text
        assert "PASS" in text

    def test_model_against_its_own_stream_trace(self):
        """The CI gate in miniature: DES trace vs closed-form breakdown."""
        from repro.core.schedule import GateStreamPlan, stream_makespan
        from repro.hardware.pipeline import StageTimes

        machine = MACHINES["p100"]
        version = VERSIONS_BY_NAME["Overlap"]
        circuit = get_circuit("bv", 32, seed=0)
        timing = QGpuSimulator(machine=machine, version=version).estimate(circuit)
        plans = []
        for record in timing.per_gate:
            if record.bytes_h2d <= 0 or record.name == "<readout>":
                continue
            bandwidth = machine.link.bandwidth_per_direction
            plans.append(GateStreamPlan(
                f"{record.index}:{record.name}", 4,
                StageTimes(record.bytes_h2d / 4 / bandwidth,
                           record.gpu_seconds / 4,
                           record.bytes_d2h / 4 / bandwidth),
            ))
            if len(plans) >= 8:
                break
        assert plans, "bv_32 must stream on the paper machine"
        result = stream_makespan(plans, overlap=version.overlap)
        measured = {"h2d": 0.0, "compute": 0.0, "codec": 0.0, "d2h": 0.0}
        from repro.obs.tracer import stage_for_resource

        for resource, busy in result.busy.items():
            stage = stage_for_resource(resource)
            if stage in measured:
                measured[stage] += busy
        predicted = predicted_breakdown(timing, machine)
        report = drift_report(predicted, measured, tolerance=0.15)
        assert report.passed, report.render()
