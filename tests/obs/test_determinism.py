"""Trace determinism: serial runs reproduce byte-identically; parallel
runs stay structurally well-formed."""

from __future__ import annotations

from repro.circuits.library import get_circuit
from repro.core.simulator import QGpuSimulator
from repro.core.versions import VERSIONS_BY_NAME
from repro.obs import (
    LogicalClock,
    Tracer,
    check_spans,
    metrics_json,
    spans_from_events,
    summarize,
    trace_events,
    trace_json,
)


def _traced_run(workers, clock_factory, qubits=10):
    tracer = Tracer(clock=clock_factory())
    simulator = QGpuSimulator(
        version=VERSIONS_BY_NAME["Q-GPU"], workers=workers, tracer=tracer
    )
    simulator.run(get_circuit("bv", qubits))
    return tracer


def test_serial_logical_trace_is_byte_identical():
    first = _traced_run(1, LogicalClock)
    second = _traced_run(1, LogicalClock)
    assert trace_json(first) == trace_json(second)
    assert metrics_json(first) == metrics_json(second)


def test_serial_trace_round_trips_through_events():
    tracer = _traced_run(1, LogicalClock)
    spans = spans_from_events(trace_events(tracer))
    assert len(spans) == len(tracer.spans)
    check_spans(spans)


def test_parallel_trace_is_wellformed():
    # Large enough that dense sweeps clear the engine's inline-serial
    # work floor and actually land on the worker pool.
    tracer = _traced_run(3, LogicalClock, qubits=19)
    check_spans(tracer.spans)
    lanes = tracer.lanes()
    assert lanes[0] == "main"
    assert any(lane.startswith("chunk-worker") for lane in lanes)


def test_traced_run_matches_untraced_result():
    circuit = get_circuit("qft", 8)
    plain = QGpuSimulator(version=VERSIONS_BY_NAME["Q-GPU"], workers=1).run(circuit)
    tracer = Tracer(clock=LogicalClock())
    traced = QGpuSimulator(
        version=VERSIONS_BY_NAME["Q-GPU"], workers=1, tracer=tracer
    ).run(circuit)
    assert (plain.amplitudes == traced.amplitudes).all()


def test_stage_totals_plus_untraced_equal_wall():
    # The acceptance identity: per-stage totals sum to the wall total
    # (within fp tolerance; exact for integer logical ticks).
    tracer = _traced_run(1, LogicalClock)
    summary = summarize(tracer.spans)
    assert summary.wall == sum(summary.stages.values()) + summary.untraced
    assert summary.stages.get("compute", 0) > 0


def test_run_counters_populated():
    tracer = _traced_run(1, LogicalClock)
    snapshot = tracer.counters.snapshot()
    assert snapshot["runs.completed"] == 1
    assert snapshot["chunk_updates.total"] > 0
    assert any(name.startswith("kernels.") for name in snapshot)
