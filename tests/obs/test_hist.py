"""Streaming log-bucket histograms: grid, merging, determinism, registry."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import CounterRegistry, Histogram, bucket_exponent
from repro.obs.hist import MAX_EXP, MIN_EXP


class TestBucketExponent:
    def test_exact_powers_of_two_land_on_their_own_bound(self):
        for exp in (-10, -1, 0, 1, 5, 20):
            assert bucket_exponent(2.0**exp) == exp

    def test_values_just_above_a_bound_go_to_the_next_bucket(self):
        assert bucket_exponent(1.0000001) == 1
        assert bucket_exponent(2.0000001) == 2
        assert bucket_exponent(0.5000001) == 0

    def test_generic_values(self):
        assert bucket_exponent(3.0) == 2       # 2 < 3 <= 4
        assert bucket_exponent(0.3) == -1      # 0.25 < 0.3 <= 0.5
        assert bucket_exponent(1000.0) == 10   # 512 < 1000 <= 1024

    def test_zero_negative_and_tiny_clamp_to_min(self):
        assert bucket_exponent(0.0) == MIN_EXP
        assert bucket_exponent(-5.0) == MIN_EXP
        assert bucket_exponent(1e-300) == MIN_EXP

    def test_huge_values_clamp_to_max(self):
        assert bucket_exponent(1e300) == MAX_EXP
        assert bucket_exponent(2.0**MAX_EXP + 1) == MAX_EXP


class TestHistogram:
    def test_count_sum_min_max(self):
        h = Histogram("latency")
        for v in (0.5, 1.5, 3.0, 0.25):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(5.25)
        snap = h.snapshot()
        assert snap["min"] == 0.25
        assert snap["max"] == 3.0

    def test_buckets_quantise_on_the_grid(self):
        h = Histogram("x")
        h.observe(3.0)   # bucket exp 2
        h.observe(3.5)   # bucket exp 2
        h.observe(5.0)   # bucket exp 3
        assert h.buckets() == {2: 2, 3: 1}

    def test_cumulative_fills_empty_intermediate_buckets(self):
        h = Histogram("x")
        h.observe(1.0)   # exp 0
        h.observe(16.0)  # exp 4
        pairs = list(h.cumulative())
        assert [bound for bound, _ in pairs] == [1.0, 2.0, 4.0, 8.0, 16.0]
        assert [count for _, count in pairs] == [1, 1, 1, 1, 2]

    def test_merge_adds_counts_and_tracks_extrema(self):
        a = Histogram("x")
        b = Histogram("x")
        for v in (1.0, 2.0):
            a.observe(v)
        for v in (0.1, 50.0):
            b.observe(v)
        a.merge(b)
        assert a.count == 4
        assert a.sum == pytest.approx(53.1)
        assert a.snapshot()["min"] == 0.1
        assert a.snapshot()["max"] == 50.0
        # Merging is count-exact: the merged buckets are the sums.
        assert sum(a.buckets().values()) == 4

    def test_snapshot_is_order_independent(self):
        values = [0.001, 7.5, 2.0, 0.3, 1024.0, 0.3]
        a = Histogram("x")
        b = Histogram("x")
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        assert a.snapshot() == b.snapshot()

    def test_key_includes_sorted_labels(self):
        assert Histogram("h").key() == "h"
        assert (
            Histogram("h", {"stage": "h2d", "dir": "in"}).key()
            == "h{dir=in,stage=h2d}"
        )

    def test_concurrent_observes_lose_nothing(self):
        h = Histogram("x")

        def work():
            for _ in range(1000):
                h.observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 4000
        assert h.buckets() == {0: 4000}


class TestRegistryIntegration:
    def test_histogram_get_or_create_is_stable(self):
        registry = CounterRegistry()
        a = registry.histogram("span_seconds", stage="compute")
        b = registry.histogram("span_seconds", stage="compute")
        c = registry.histogram("span_seconds", stage="h2d")
        assert a is b
        assert a is not c

    def test_to_json_omits_histograms_key_when_none(self):
        registry = CounterRegistry()
        registry.count("n", 2)
        payload = json.loads(registry.to_json())
        assert "histograms" not in payload
        registry.histogram("w").observe(1.0)
        payload = json.loads(registry.to_json())
        assert payload["histograms"]["w"]["count"] == 1

    def test_clear_drops_histograms(self):
        registry = CounterRegistry()
        registry.histogram("w").observe(1.0)
        registry.clear()
        assert registry.histograms() == []
