"""Prometheus exposition edge cases: empty series, names, bucket laws."""

from __future__ import annotations

import re
import urllib.request

import pytest

from repro.obs import CounterRegistry
from repro.obs.prom import render_prometheus, sanitize_metric_name
from repro.service import BatchService, JobSpec, ServiceHTTPServer


class TestSanitizeMetricName:
    def test_dots_and_dashes_become_underscores(self):
        assert sanitize_metric_name("kernel_seconds.dense") == "kernel_seconds_dense"
        assert sanitize_metric_name("span-seconds") == "span_seconds"

    def test_leading_digit_gets_underscore_prefix(self):
        assert sanitize_metric_name("2q_gates") == "_2q_gates"

    def test_already_valid_names_pass_through(self):
        assert sanitize_metric_name("jobs_submitted") == "jobs_submitted"

    def test_every_output_matches_the_prometheus_grammar(self):
        grammar = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
        for ugly in ("a.b-c", "9lives", "sp an", "x{y}", "μops", "a..b"):
            assert grammar.match(sanitize_metric_name(ugly)), ugly


class TestZeroObservationHistogram:
    """A registered-but-never-observed series must still expose legally."""

    def test_renders_type_inf_bucket_sum_and_count(self):
        registry = CounterRegistry()
        registry.histogram("span_seconds", stage="compute")  # no observe()
        text = render_prometheus(registry)
        assert "# TYPE repro_span_seconds histogram" in text
        assert 'repro_span_seconds_bucket{stage="compute",le="+Inf"} 0' in text
        assert 'repro_span_seconds_sum{stage="compute"} 0' in text
        assert 'repro_span_seconds_count{stage="compute"} 0' in text

    def test_no_finite_buckets_before_inf(self):
        registry = CounterRegistry()
        registry.histogram("empty_series")
        text = render_prometheus(registry)
        finite = [
            line
            for line in text.splitlines()
            if line.startswith("repro_empty_series_bucket") and "+Inf" not in line
        ]
        assert finite == []


def _bucket_lines(body: str) -> dict[str, list[tuple[float, int]]]:
    """Parse ``<name>_bucket{...le="<bound>"...} <cumulative>`` lines.

    Returns, per (metric name + non-le labels) series, the (le, count)
    pairs in exposition order, with ``+Inf`` mapped to ``inf``.
    """
    series: dict[str, list[tuple[float, int]]] = {}
    pattern = re.compile(r'^(\S+_bucket)\{(.*)\} (\d+)$')
    for line in body.splitlines():
        match = pattern.match(line)
        if not match:
            continue
        name, labels, count = match.groups()
        le = None
        others = []
        for part in labels.split(","):
            key, value = part.split("=", 1)
            if key == "le":
                le = float("inf") if value == '"+Inf"' else float(value.strip('"'))
            else:
                others.append(part)
        assert le is not None, f"bucket line without le label: {line}"
        series.setdefault(f"{name}{{{','.join(others)}}}", []).append(
            (le, int(count))
        )
    return series


class TestLiveMetricsEndpoint:
    """Bucket laws checked against a real scrape, not a crafted registry."""

    @pytest.fixture()
    def metrics_body(self):
        service = BatchService(workers=1)
        service.submit(JobSpec(family="bv", qubits=6, shots=4))
        service.submit(JobSpec(family="gs", qubits=6))
        service.run_until_complete()
        server = ServiceHTTPServer(service, port=0).start()
        try:
            with urllib.request.urlopen(f"{server.url}/metrics", timeout=10) as r:
                yield r.read().decode("utf-8")
        finally:
            server.stop()

    def test_buckets_are_cumulative_monotone_and_capped_by_count(self, metrics_body):
        series = _bucket_lines(metrics_body)
        assert series, "live /metrics exposed no histogram buckets"
        for key, pairs in series.items():
            bounds = [le for le, _ in pairs]
            counts = [count for _, count in pairs]
            assert bounds == sorted(bounds), f"{key}: le bounds not ascending"
            assert bounds[-1] == float("inf"), f"{key}: missing +Inf bucket"
            assert counts == sorted(counts), f"{key}: cumulative counts decrease"
            name = key.split("{", 1)[0].removesuffix("_bucket")
            labels = key.split("{", 1)[1].rstrip("}")
            suffix = f"{{{labels}}}" if labels else ""
            count_line = re.search(
                rf"^{re.escape(name)}_count{re.escape(suffix)} (\d+)$",
                metrics_body,
                re.MULTILINE,
            )
            assert count_line, f"{key}: no matching _count line"
            assert counts[-1] == int(count_line.group(1)), (
                f"{key}: +Inf bucket disagrees with _count"
            )

    def test_all_metric_names_are_legal(self, metrics_body):
        grammar = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
        for line in metrics_body.splitlines():
            if not line or line.startswith("#"):
                continue
            name = line.split("{", 1)[0].split(" ", 1)[0]
            assert grammar.match(name), f"illegal metric name {name!r}"
