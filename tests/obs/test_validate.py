"""Span wellformedness validation."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs import LogicalClock, Span, Tracer, check_spans, validate_spans


def _span(index, start, end, *, stage="compute", lane="main", parent=None):
    return Span(index=index, name=f"s{index}", stage=stage, lane=lane,
                start=start, end=end, parent=parent)


def test_clean_spans_pass():
    spans = [
        _span(0, 0.0, 10.0),
        _span(1, 1.0, 4.0, parent=0),
        _span(2, 5.0, 9.0, parent=0),
    ]
    assert validate_spans(spans) == []
    check_spans(spans)  # does not raise


def test_negative_duration_flagged():
    problems = validate_spans([_span(0, 5.0, 3.0)])
    assert len(problems) == 1
    assert "end" in problems[0] or "start" in problems[0]


def test_unknown_stage_flagged():
    bad = Span(index=0, name="s", stage="warp", lane="main",
               start=0.0, end=1.0, parent=None)
    assert validate_spans([bad])


def test_unresolved_parent_flagged():
    assert validate_spans([_span(0, 0.0, 1.0, parent=99)])


def test_parent_must_enclose_child():
    spans = [
        _span(0, 0.0, 5.0),
        _span(1, 4.0, 8.0, parent=0),  # leaks past the parent's end
    ]
    assert validate_spans(spans)


def test_lane_overlap_without_nesting_flagged():
    spans = [
        _span(0, 0.0, 5.0),
        _span(1, 3.0, 8.0),  # same lane, overlapping, not nested
    ]
    assert validate_spans(spans)


def test_overlap_on_different_lanes_ok():
    spans = [
        _span(0, 0.0, 5.0, lane="main"),
        _span(1, 3.0, 8.0, lane="chunk-worker_0"),
    ]
    assert validate_spans(spans) == []


def test_logical_clock_touching_endpoints_ok():
    # Integer ticks make sibling spans share endpoints; that is not overlap.
    spans = [
        _span(0, 0, 6),
        _span(1, 1, 2, parent=0),
        _span(2, 2, 3, parent=0),
    ]
    assert validate_spans(spans) == []


def test_check_spans_raises_with_all_problems():
    spans = [_span(0, 5.0, 3.0), _span(1, 0.0, 1.0, parent=42)]
    with pytest.raises(ObservabilityError) as excinfo:
        check_spans(spans)
    message = str(excinfo.value)
    assert "s0" in message and "s1" in message


def test_real_tracer_output_validates():
    tracer = Tracer(clock=LogicalClock())
    with tracer.span("run"):
        for _ in range(3):
            with tracer.span("apply", stage="compute"):
                with tracer.span("h2d", stage="h2d"):
                    pass
    assert validate_spans(tracer.spans) == []
