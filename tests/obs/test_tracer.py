"""Tracer span mechanics: nesting, lanes, disabled mode, stage checks."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs import NULL_TRACER, STAGES, LogicalClock, Tracer, stage_for_resource


def test_single_span_records_interval():
    tracer = Tracer(clock=LogicalClock())
    with tracer.span("work", stage="compute"):
        pass
    (span,) = tracer.spans
    assert span.name == "work"
    assert span.stage == "compute"
    assert span.end >= span.start
    assert span.parent is None
    assert span.lane == "main"


def test_nested_spans_link_parent():
    tracer = Tracer(clock=LogicalClock())
    with tracer.span("outer", stage="compute"):
        with tracer.span("inner", stage="h2d"):
            pass
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["inner"].parent == by_name["outer"].index
    assert by_name["outer"].start <= by_name["inner"].start
    assert by_name["inner"].end <= by_name["outer"].end


def test_unknown_stage_rejected():
    tracer = Tracer(clock=LogicalClock())
    with pytest.raises(ObservabilityError):
        with tracer.span("bad", stage="warp-drive"):
            pass


def test_stage_optional():
    tracer = Tracer(clock=LogicalClock())
    with tracer.span("structural"):
        pass
    assert tracer.spans[0].stage is None


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    with tracer.span("work", stage="compute"):
        pass
    assert tracer.spans == []
    assert NULL_TRACER.spans == []


def test_null_tracer_is_shared_and_disabled():
    assert NULL_TRACER.enabled is False
    # The disabled span context manager is reusable and cheap.
    handle = NULL_TRACER.span("x", stage="compute")
    assert handle is NULL_TRACER.span("y", stage="h2d")


def test_attrs_recorded():
    tracer = Tracer(clock=LogicalClock())
    with tracer.span("apply:h", stage="compute", gate=3, groups=2):
        pass
    assert tracer.spans[0].attrs == {"gate": 3, "groups": 2}


def test_explicit_parent_crosses_threads():
    tracer = Tracer(clock=LogicalClock())
    with tracer.span("coordinate", stage="schedule"):
        parent = tracer.current_parent()

        def work():
            with tracer.span("worker", stage="compute", parent=parent):
                pass

        thread = threading.Thread(target=work, name="chunk-worker_0")
        thread.start()
        thread.join()
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["worker"].parent == by_name["coordinate"].index
    assert by_name["worker"].lane == "chunk-worker_0"


def test_lanes_main_first():
    tracer = Tracer(clock=LogicalClock())
    with tracer.span("a", stage="compute"):
        pass

    def work():
        with tracer.span("b", stage="compute"):
            pass

    thread = threading.Thread(target=work, name="aaa-worker")
    thread.start()
    thread.join()
    assert tracer.lanes()[0] == "main"


def test_des_resource_names_map_into_taxonomy():
    # Every DES-model resource must land inside the stage taxonomy so the
    # two exporters share one summary vocabulary.
    for resource in ("h2d", "gpu", "d2h", "cpu", "codec"):
        assert stage_for_resource(resource) in STAGES


def test_detailed_executor_resources_all_mapped():
    # The resources the detailed DES executor actually schedules must map
    # into the taxonomy (backoff timers are structural and may not).
    from repro.circuits.library import get_circuit
    from repro.core.detailed import DetailedExecutor
    from repro.core.versions import VERSIONS_BY_NAME
    from repro.hardware.machine import Machine
    from repro.hardware.specs import MACHINES

    executor = DetailedExecutor(
        Machine(MACHINES["p100"]), chunk_bits=6, capacity_bytes=4 * (16 << 6)
    )
    run = executor.execute(get_circuit("bv", 8), VERSIONS_BY_NAME["Q-GPU"])
    resources = {r.task.resource for r in run.timeline.records.values()}
    assert resources, "detailed run scheduled no tasks"
    for resource in resources:
        if resource.startswith("__backoff__"):
            continue
        assert stage_for_resource(resource) in STAGES, resource
