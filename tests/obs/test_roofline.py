"""Measured kernel rooflines: derivation, rendering, traced-run wiring."""

from __future__ import annotations

import pytest

from repro.obs.roofline import (
    KernelRoofline,
    kernel_rooflines,
    render_kernel_rooflines,
    rooflines_payload,
)

#: 10 GB/s bound keeps the arithmetic in round numbers.
BOUND = 10e9

#: A counter snapshot as the chunk engines would leave it: two timed
#: kinds plus an invocation-only structural marker (fused_slab).
COUNTERS = {
    "kernels.diagonal": 4,
    "kernel_amps.diagonal": 1_000_000.0,
    "kernel_bytes.diagonal": 32_000_000.0,
    "kernel_seconds.diagonal": 0.008,
    "kernels.dense": 2,
    "kernel_amps.dense": 500_000.0,
    "kernel_bytes.dense": 16_000_000.0,
    "kernel_seconds.dense": 0.004,
    "kernels.fused_slab": 3,  # no seconds -> structural, skipped
    "gates_applied": 42,  # unrelated counters are ignored
}


class TestKernelRooflines:
    def test_rows_only_for_timed_kinds_sorted_by_seconds(self):
        rows = kernel_rooflines(COUNTERS, bandwidth=BOUND)
        assert [row.kind for row in rows] == ["diagonal", "dense"]

    def test_derived_quantities(self):
        diagonal = kernel_rooflines(COUNTERS, bandwidth=BOUND)[0]
        assert diagonal.calls == 4
        assert diagonal.amps_per_second == pytest.approx(1_000_000 / 0.008)
        assert diagonal.bytes_per_amp == pytest.approx(32.0)
        assert diagonal.achieved_bandwidth == pytest.approx(4e9)
        assert diagonal.efficiency == pytest.approx(0.4)

    def test_zero_seconds_row_yields_zero_rates(self):
        row = KernelRoofline(
            kind="gather", calls=1, amps=0.0, bytes=0.0, seconds=0.0,
            bound_bandwidth=BOUND,
        )
        assert row.amps_per_second == 0.0
        assert row.bytes_per_amp == 0.0
        assert row.achieved_bandwidth == 0.0

    def test_zero_bound_yields_zero_efficiency(self):
        rows = kernel_rooflines(COUNTERS, bandwidth=0.0)
        assert all(row.efficiency == 0.0 for row in rows)

    def test_empty_counters_give_no_rows(self):
        assert kernel_rooflines({}, bandwidth=BOUND) == []


class TestRendering:
    def test_table_names_the_dominant_kernel(self):
        text = render_kernel_rooflines(kernel_rooflines(COUNTERS, BOUND))
        assert "dominant kernel: diagonal at 40% of the bandwidth bound" in text
        assert "dense" in text

    def test_empty_rows_explain_themselves(self):
        assert "no timed kernel work" in render_kernel_rooflines([])

    def test_payload_is_json_safe_and_ordered(self):
        rows = kernel_rooflines(COUNTERS, BOUND)
        payload = rooflines_payload(rows)
        assert [entry["kind"] for entry in payload] == ["diagonal", "dense"]
        assert payload[0]["efficiency"] == pytest.approx(0.4)
        assert all(
            isinstance(value, (str, float)) for entry in payload
            for value in entry.values()
        )


class TestTracedRunWiring:
    """A real traced run leaves the counters the roofline feeds on."""

    def test_simulation_records_kernel_work_counters(self):
        from repro.circuits.library import get_circuit
        from repro.core.simulator import QGpuSimulator
        from repro.core.versions import VERSIONS_BY_NAME
        from repro.obs import Tracer, WallClock

        tracer = Tracer(clock=WallClock())
        simulator = QGpuSimulator(
            version=VERSIONS_BY_NAME["Q-GPU"], workers=1, tracer=tracer
        )
        simulator.run(get_circuit("qft", 8))
        counters = tracer.counters.snapshot()
        timed = [k for k in counters if k.startswith("kernel_seconds.")]
        assert timed, "traced functional run recorded no kernel work"
        rows = kernel_rooflines(counters, bandwidth=BOUND)
        assert rows and rows[0].seconds > 0
        assert rows[0].amps > 0
        # DES byte convention: every amp moves 2 x itemsize bytes.
        assert rows[0].bytes == pytest.approx(rows[0].amps * 32.0)

    def test_logical_clock_run_skips_wall_seconds_but_keeps_work(self):
        """Deterministic traces stay byte-identical: no wall time in them."""
        from repro.circuits.library import get_circuit
        from repro.core.simulator import QGpuSimulator
        from repro.core.versions import VERSIONS_BY_NAME
        from repro.obs import LogicalClock, Tracer

        tracer = Tracer(clock=LogicalClock())
        QGpuSimulator(
            version=VERSIONS_BY_NAME["Q-GPU"], workers=1, tracer=tracer
        ).run(get_circuit("qft", 8))
        counters = tracer.counters.snapshot()
        assert not any(k.startswith("kernel_seconds.") for k in counters)
        assert any(k.startswith("kernel_amps.") for k in counters)
        assert kernel_rooflines(counters, bandwidth=BOUND) == []


class TestModelSide:
    def test_model_points_match_fig15_grid_order(self):
        from repro.analysis.roofline import RooflinePoint
        from repro.core.versions import VERSIONS_BY_NAME
        from repro.experiments.fig15_roofline import ROOFLINE_MACHINE
        from repro.hardware.specs import V100_16GB
        from repro.obs.roofline import model_roofline_points

        versions = (VERSIONS_BY_NAME["Q-GPU"],)
        points = model_roofline_points(
            ("qft", "bv"), (10,), versions,
            machine=ROOFLINE_MACHINE, gpu=V100_16GB,
        )
        assert [key[0] for key, _ in points] == ["qft", "bv"]
        assert all(isinstance(point, RooflinePoint) for _, point in points)
