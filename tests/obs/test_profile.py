"""Sampling profiler: attribution, exports, flamegraph, RSS read-backs."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs import LogicalClock, SamplingProfiler, Tracer
from repro.obs.profile import (
    UNATTRIBUTED_STAGE,
    process_peak_rss_bytes,
    process_rss_bytes,
    render_flamegraph,
)


class TestValidation:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ObservabilityError, match="interval"):
            SamplingProfiler(interval=0.0)

    def test_rejects_zero_depth(self):
        with pytest.raises(ObservabilityError, match="max_depth"):
            SamplingProfiler(max_depth=0)

    def test_double_start_raises(self):
        profiler = SamplingProfiler()
        profiler.start()
        try:
            with pytest.raises(ObservabilityError, match="already started"):
                profiler.start()
        finally:
            profiler.stop()


class TestSampleAttribution:
    def test_sample_inside_span_lands_on_that_stage(self):
        tracer = Tracer(clock=LogicalClock())
        profiler = SamplingProfiler(tracer=tracer)
        with tracer.span("apply", "compute"):
            assert profiler.sample_once() >= 1
        stages = {key[1] for key in profiler.samples}
        assert "compute" in stages

    def test_sample_outside_any_span_is_unattributed(self):
        profiler = SamplingProfiler(tracer=Tracer(clock=LogicalClock()))
        profiler.sample_once()
        main_stages = {
            key[1] for key in profiler.samples if key[0] == "main"
        }
        assert main_stages == {UNATTRIBUTED_STAGE}

    def test_tracer_profiler_kwarg_attaches(self):
        profiler = SamplingProfiler()
        tracer = Tracer(clock=LogicalClock(), profiler=profiler)
        assert profiler.tracer is tracer

    def test_worker_threads_sample_under_their_own_lane(self):
        tracer = Tracer(clock=LogicalClock())
        profiler = SamplingProfiler(tracer=tracer)
        ready = threading.Event()
        done = threading.Event()

        def work() -> None:
            with tracer.span("worker-span", "compute"):
                ready.set()
                done.wait(timeout=10)

        thread = threading.Thread(target=work, name="lane-w0")
        thread.start()
        try:
            assert ready.wait(timeout=10)
            profiler.sample_once()
        finally:
            done.set()
            thread.join(timeout=10)
        lanes = {key[0]: key[1] for key in profiler.samples}
        assert lanes.get("lane-w0") == "compute"

    def test_background_thread_collects_and_stops(self):
        tracer = Tracer(clock=LogicalClock())
        with SamplingProfiler(interval=0.001, tracer=tracer) as profiler:
            assert profiler.running
            deadline = threading.Event()
            with tracer.span("spin", "compute"):
                while profiler.total_samples == 0 and not deadline.wait(0.005):
                    pass
        assert not profiler.running
        assert profiler.total_samples >= 1

    def test_max_depth_truncates_stacks(self):
        profiler = SamplingProfiler(max_depth=2)
        profiler.sample_once()
        for key in profiler.samples:
            assert len(key) - 2 <= 2  # (lane, stage, *frames)


class TestExports:
    def _profiled(self) -> SamplingProfiler:
        tracer = Tracer(clock=LogicalClock())
        profiler = SamplingProfiler(tracer=tracer)
        with tracer.span("apply", "compute"):
            profiler.sample_once()
            profiler.sample_once()
        with tracer.span("choose", "plan"):
            profiler.sample_once()
        return profiler

    def test_stage_shares_sum_to_one_and_sort_descending(self):
        shares = self._profiled().stage_shares()
        assert shares  # at least the two staged samples
        assert sum(shares.values()) == pytest.approx(1.0)
        assert list(shares.values()) == sorted(shares.values(), reverse=True)
        assert shares.get("compute", 0) > shares.get("plan", 0) > 0

    def test_folded_lines_are_semicolon_stacks_with_counts(self):
        folded = self._profiled().folded()
        assert folded.endswith("\n")
        for line in folded.strip().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            parts = stack.split(";")
            assert len(parts) >= 2  # lane;stage at minimum
            assert parts[0]  # lane never empty

    def test_empty_profiler_folded_is_empty(self):
        assert SamplingProfiler().folded() == ""

    def test_flamegraph_is_selfcontained_deterministic_svg(self):
        profiler = self._profiled()
        svg = profiler.flamegraph(title="t")
        assert svg.startswith("<svg xmlns=")
        assert svg == profiler.flamegraph(title="t")  # deterministic
        assert "<script" not in svg and "http://" not in svg.replace(
            "http://www.w3.org/2000/svg", ""
        )
        assert "compute" in svg and "plan" in svg

    def test_render_flamegraph_handles_no_samples(self):
        svg = render_flamegraph({}, title="empty")
        assert svg.startswith("<svg") and "0 sample(s)" in svg

    def test_write_emits_folded_and_svg(self, tmp_path):
        folded_path, svg_path = self._profiled().write(tmp_path / "run.profile")
        assert folded_path.name == "run.profile.folded"
        assert svg_path.name == "run.profile.svg"
        assert folded_path.read_text().strip()
        assert svg_path.read_text().startswith("<svg")


class TestMemoryTelemetry:
    def test_process_rss_helpers_return_positive_bytes(self):
        rss = process_rss_bytes()
        peak = process_peak_rss_bytes()
        assert rss > 0
        assert peak >= rss // 2  # peak is a high-water mark of the same process

    def test_tracer_memory_records_span_peak_histogram(self):
        tracer = Tracer(clock=LogicalClock(), memory=True)
        with tracer.span("alloc", "compute"):
            blob = bytearray(1 << 20)
            del blob
        snapshot = tracer.counters.histogram_snapshot()
        peaks = [
            series
            for key, series in snapshot.items()
            if key.startswith("span_peak_bytes")
        ]
        assert peaks and peaks[0]["count"] >= 1
        assert peaks[0]["max"] > 0
