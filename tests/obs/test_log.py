"""Structured logging: logger naming, JSON formatter, configure_logging."""

from __future__ import annotations

import json
import logging

from repro.obs import JsonLogFormatter, configure_logging, get_logger


def _record(msg="hello", args=(), **extra):
    record = logging.LogRecord(
        name="repro.test", level=logging.INFO, pathname=__file__, lineno=1,
        msg=msg, args=args, exc_info=None,
    )
    for key, value in extra.items():
        setattr(record, key, value)
    return record


def test_get_logger_namespaced():
    assert get_logger().name == "repro"
    assert get_logger("cli").name == "repro.cli"


def test_json_formatter_basic_fields():
    payload = json.loads(JsonLogFormatter().format(_record()))
    assert payload["level"] == "info"
    assert payload["logger"] == "repro.test"
    assert payload["message"] == "hello"


def test_json_formatter_interpolates_and_keeps_extras():
    record = _record("wrote %d bytes", (42,), path="/tmp/x.json")
    payload = json.loads(JsonLogFormatter().format(record))
    assert payload["message"] == "wrote 42 bytes"
    assert payload["path"] == "/tmp/x.json"


def test_json_formatter_sorted_and_one_line():
    record = _record(zulu=1, alpha=2)
    text = JsonLogFormatter().format(record)
    assert "\n" not in text
    keys = list(json.loads(text))
    assert keys == sorted(keys)


def test_json_formatter_non_serializable_extra_reprs():
    record = _record(payload=object())
    payload = json.loads(JsonLogFormatter().format(record))
    assert "object object" in payload["payload"]


def test_configure_logging_levels_and_idempotence():
    try:
        configure_logging(level="debug", fmt="text")
        root = logging.getLogger("repro")
        assert root.level == logging.DEBUG
        assert len(root.handlers) == 1
        assert root.propagate is False
        configure_logging(level="error", fmt="json")
        assert root.level == logging.ERROR
        assert len(root.handlers) == 1
        assert isinstance(root.handlers[0].formatter, JsonLogFormatter)
    finally:
        configure_logging(level="warning", fmt="text")


def test_configured_logger_emits_json(capsys):
    try:
        configure_logging(level="info", fmt="json")
        get_logger("unit").info("traced", extra={"spans": 5})
        err = capsys.readouterr().err
        payload = json.loads(err.strip())
        assert payload["message"] == "traced"
        assert payload["spans"] == 5
        assert payload["logger"] == "repro.unit"
    finally:
        configure_logging(level="warning", fmt="text")
