"""Perf ledger: flattening, fingerprints, baselines, regression diffs."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.ledger import (
    append_record,
    baseline_for,
    build_record,
    diff_records,
    environment_fingerprint,
    fingerprint_id,
    flatten_numeric,
    load_ledger,
    metric_direction,
    render_diff,
    render_record,
)

KERNELS = {
    "mode": "smoke",
    "results": {
        "inside_h": {"parallel_speedup": 2.0, "parallel_mamps": 120.0},
        "diagonal_rz": {"serial_speedup": 1.4},
    },
}
PLANNER = {
    "mode": "smoke",
    "accuracy": 1.0,
    "geomean_speedup_vs_dense": 1.8,
    "cases": [
        {"circuit": "qft_10", "correct": True, "speedup_vs_dense": 2.1},
        {"circuit": "bv_12", "correct": False, "speedup_vs_dense": 1.2},
    ],
}


def _write_benches(root, kernels=KERNELS, planner=PLANNER) -> None:
    (root / "BENCH_kernels.json").write_text(json.dumps(kernels))
    (root / "BENCH_planner.json").write_text(json.dumps(planner))


class TestFlatten:
    def test_dicts_recurse_with_dotted_keys(self):
        flat = flatten_numeric(KERNELS)
        assert flat["results.inside_h.parallel_speedup"] == 2.0

    def test_list_items_key_by_circuit_field(self):
        flat = flatten_numeric(PLANNER)
        assert flat["cases.qft_10.speedup_vs_dense"] == 2.1
        assert flat["cases.bv_12.correct"] == 0.0  # bools gate as 0/1

    def test_unkeyed_list_items_fall_back_to_index(self):
        flat = flatten_numeric({"xs": [{"v": 1.5}, {"v": 2.5}]})
        assert flat == {"xs.0.v": 1.5, "xs.1.v": 2.5}

    def test_strings_and_nulls_are_dropped(self):
        assert flatten_numeric({"mode": "smoke", "rev": None, "n": 3}) == {"n": 3.0}


class TestFingerprint:
    def test_fingerprint_is_stable_within_a_process(self):
        first = environment_fingerprint()
        assert first == environment_fingerprint()
        assert fingerprint_id(first) == fingerprint_id(dict(first))
        assert len(fingerprint_id(first)) == 12

    def test_different_fingerprints_get_different_ids(self):
        base = environment_fingerprint()
        other = dict(base, cores=(base["cores"] or 0) + 1)
        assert fingerprint_id(base) != fingerprint_id(other)


class TestRecords:
    def test_build_record_ingests_present_benches(self, tmp_path):
        _write_benches(tmp_path)
        record = build_record(tmp_path, timestamp=100.0)
        assert set(record["benches"]) == {"kernels", "planner"}
        assert sorted(record["missing"]) == ["fleet", "obs", "service"]
        assert record["mode"] == "smoke"
        assert record["timestamp"] == 100.0
        metrics = record["benches"]["planner"]["metrics"]
        assert metrics["accuracy"] == 1.0

    def test_build_record_without_any_bench_raises(self, tmp_path):
        with pytest.raises(ObservabilityError, match="no BENCH"):
            build_record(tmp_path)

    def test_append_and_load_roundtrip(self, tmp_path):
        _write_benches(tmp_path)
        ledger = tmp_path / "BENCH_LEDGER.jsonl"
        record = build_record(tmp_path, timestamp=1.0)
        append_record(ledger, record)
        append_record(ledger, build_record(tmp_path, timestamp=2.0))
        records = load_ledger(ledger)
        assert [r["timestamp"] for r in records] == [1.0, 2.0]
        assert records[0]["benches"] == record["benches"]

    def test_corrupt_ledger_line_raises_with_lineno(self, tmp_path):
        ledger = tmp_path / "BENCH_LEDGER.jsonl"
        ledger.write_text('{"schema": 1}\nnot json\n')
        with pytest.raises(ObservabilityError, match=":2"):
            load_ledger(ledger)

    def test_render_record_mentions_benches_and_missing(self, tmp_path):
        _write_benches(tmp_path)
        text = render_record(build_record(tmp_path, timestamp=1.0))
        assert "kernels" in text and "planner" in text
        assert "missing : service, obs" in text


class TestBaseline:
    def test_picks_most_recent_same_fingerprint_and_mode(self, tmp_path):
        _write_benches(tmp_path)
        older = build_record(tmp_path, timestamp=1.0)
        newer = build_record(tmp_path, timestamp=2.0)
        latest = build_record(tmp_path, timestamp=3.0)
        assert baseline_for([older, newer], latest) is newer

    def test_other_fingerprint_or_mode_is_never_a_baseline(self, tmp_path):
        _write_benches(tmp_path)
        latest = build_record(tmp_path, timestamp=3.0)
        foreign = dict(build_record(tmp_path, timestamp=1.0),
                       fingerprint_id="deadbeef0000")
        full = dict(build_record(tmp_path, timestamp=2.0), mode="full")
        assert baseline_for([foreign, full], latest) is None


class TestDiff:
    def test_direction_heuristic(self):
        assert metric_direction("baseline_seconds") == "lower"
        assert metric_direction("disabled_overhead") == "lower"
        assert metric_direction("results.inside_h.parallel_speedup") == "higher"
        assert metric_direction("accuracy") == "higher"
        assert metric_direction("num_qubits") is None

    def test_injected_20pct_kernel_slowdown_is_flagged(self, tmp_path):
        """The acceptance check: ledger diff catches a 20% regression."""
        _write_benches(tmp_path)
        baseline = build_record(tmp_path, timestamp=1.0)
        slowed = json.loads(json.dumps(KERNELS))
        slowed["results"]["inside_h"]["parallel_speedup"] *= 0.8  # -20%
        _write_benches(tmp_path, kernels=slowed)
        latest = build_record(tmp_path, timestamp=2.0)
        entries = diff_records(baseline, latest, tolerance=0.05)
        regressions = {
            (e.bench, e.metric) for e in entries if e.regressed
        }
        assert ("kernels", "results.inside_h.parallel_speedup") in regressions
        # Regressions sort first and render loudly.
        assert entries[0].regressed
        assert "REGRESSED kernels.results.inside_h.parallel_speedup" in (
            render_diff(entries)
        )

    def test_moves_within_tolerance_do_not_regress(self, tmp_path):
        _write_benches(tmp_path)
        baseline = build_record(tmp_path, timestamp=1.0)
        wobble = json.loads(json.dumps(KERNELS))
        wobble["results"]["inside_h"]["parallel_speedup"] *= 0.97  # -3%
        _write_benches(tmp_path, kernels=wobble)
        latest = build_record(tmp_path, timestamp=2.0)
        entries = diff_records(baseline, latest, tolerance=0.05)
        assert not any(e.regressed for e in entries)

    def test_improvements_never_regress(self, tmp_path):
        _write_benches(tmp_path)
        baseline = build_record(tmp_path, timestamp=1.0)
        faster = json.loads(json.dumps(KERNELS))
        faster["results"]["inside_h"]["parallel_speedup"] *= 2.0
        _write_benches(tmp_path, kernels=faster)
        latest = build_record(tmp_path, timestamp=2.0)
        assert not any(
            e.regressed for e in diff_records(baseline, latest, tolerance=0.05)
        )

    def test_informational_metrics_are_reported_but_never_regressed(self, tmp_path):
        _write_benches(tmp_path)
        baseline = build_record(tmp_path, timestamp=1.0)
        grew = json.loads(json.dumps(PLANNER))
        grew["cases"][0]["speedup_vs_dense"] = 0.1  # huge drop, higher-better
        _write_benches(tmp_path, planner=grew)
        latest = build_record(tmp_path, timestamp=2.0)
        entries = diff_records(baseline, latest, tolerance=0.05)
        by_key = {(e.bench, e.metric): e for e in entries}
        drop = by_key[("planner", "cases.qft_10.speedup_vs_dense")]
        assert drop.regressed  # speedup IS directional
        qubits = by_key.get(("kernels", "mode"))
        assert qubits is None  # strings never flatten into metrics


def _gate_module():
    """Load ``benchmarks/check_bench_regression.py`` as a module."""
    import importlib.util
    from pathlib import Path

    script = (
        Path(__file__).resolve().parents[2]
        / "benchmarks" / "check_bench_regression.py"
    )
    spec = importlib.util.spec_from_file_location("check_bench_regression_ut", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestGateScript:
    """``check_bench_regression.py``'s ledger gate over a tmp ledger."""

    def test_ledger_regression_fails_the_gate(self, tmp_path):
        _write_benches(tmp_path)
        ledger = tmp_path / "BENCH_LEDGER.jsonl"
        append_record(ledger, build_record(tmp_path, timestamp=1.0))
        slowed = json.loads(json.dumps(KERNELS))
        for case in slowed["results"].values():
            for metric in case:
                case[metric] *= 0.8
        _write_benches(tmp_path, kernels=slowed)
        append_record(ledger, build_record(tmp_path, timestamp=2.0))
        verdict = _gate_module().ledger_gate(ledger)
        assert verdict["passed"] is False
        assert any("parallel_speedup" in failure for failure in verdict["failures"])

    def test_first_record_on_a_fingerprint_passes_with_note(self, tmp_path):
        _write_benches(tmp_path)
        ledger = tmp_path / "BENCH_LEDGER.jsonl"
        append_record(ledger, build_record(tmp_path, timestamp=1.0))
        verdict = _gate_module().ledger_gate(ledger)
        assert verdict["passed"] is True
        assert "first run" in verdict["note"]

    def test_missing_ledger_passes_with_note(self, tmp_path):
        verdict = _gate_module().ledger_gate(tmp_path / "nope.jsonl")
        assert verdict["passed"] is True
        assert "no ledger" in verdict["note"]
