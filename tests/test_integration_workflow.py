"""End-to-end integration: a downstream user's whole workflow.

Chains the public surface the way an adopter would: generate a workload,
transpile it, choose a layout, run it exactly through the Q-GPU pipeline,
persist the state, reload and sample, check observables across engines, and
finally price the large-width run on several machines via the planner.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.circuits.layout import cache_blocking_layout, apply_layout, permute_statevector
from repro.circuits.library import get_circuit
from repro.circuits.passes import transpile
from repro.circuits.qasm import from_qasm, to_qasm
from repro.core.planner import plan_execution
from repro.core.simulator import QGpuSimulator
from repro.core.versions import QGPU
from repro.mps import simulate_mps
from repro.statevector import (
    dump_state,
    expectation_pauli,
    load_state,
    PauliString,
    sample_counts,
    simulate,
)
from repro.hardware.specs import A100_MACHINE, PAPER_MACHINE


class TestFullWorkflow:
    def test_generate_transform_run_persist_sample_plan(self, tmp_path) -> None:
        # 1. Workload generation + interchange.
        circuit = get_circuit("qaoa", 10)
        circuit = from_qasm(to_qasm(circuit), name="qaoa_10")

        # 2. Transpile + layout, preserving semantics.
        lowered = transpile(circuit)
        mapping = cache_blocking_layout(lowered, 4)
        placed = apply_layout(lowered, mapping)

        # 3. Exact run through the full Q-GPU functional pipeline.
        result = QGpuSimulator(version=QGPU, chunk_bits=4).run(placed)
        reference = permute_statevector(simulate(circuit).amplitudes, mapping)
        np.testing.assert_allclose(result.amplitudes, reference, atol=1e-9)

        # 4. Persist compressed, reload bit-exact, sample.
        path = tmp_path / "qaoa10.qgsv"
        dump_state(result.amplitudes, path)
        restored = load_state(path)
        np.testing.assert_array_equal(
            restored.amplitudes.view(np.uint64),
            result.amplitudes.view(np.uint64),
        )
        counts = sample_counts(restored.amplitudes, shots=500, seed=0)
        assert sum(counts.values()) == 500

        # 5. Cross-engine observable agreement (original labelling).
        dense_state = simulate(circuit).amplitudes
        mps_state = simulate_mps(circuit)
        observable = PauliString.parse("Z0 Z1")
        dense_value = expectation_pauli(dense_state, observable)
        mps_value = expectation_pauli(mps_state.to_dense(), observable)
        assert dense_value == pytest.approx(mps_value, abs=1e-9)

        # 6. Price the real-size experiment on two machines.
        large = get_circuit("qaoa", 32)
        p100_plan = plan_execution(large, machine=PAPER_MACHINE)
        a100_plan = plan_execution(large, machine=A100_MACHINE)
        assert p100_plan.best.seconds > 0
        assert a100_plan.best.seconds > 0
        assert p100_plan.machine_name != a100_plan.machine_name
        # The A100's larger device memory gives its static Baseline more
        # residency than the P100's (paper Section V-D).
        assert a100_plan.speedup_over("Baseline") < p100_plan.speedup_over("Baseline")

    def test_memory_stream_roundtrip_of_pipeline_output(self) -> None:
        circuit = get_circuit("gs", 12)
        result = QGpuSimulator(version=QGPU).run(circuit)
        buffer = io.BytesIO()
        dump_state(result.amplitudes, buffer)
        buffer.seek(0)
        restored = load_state(buffer)
        assert restored.num_qubits == 12
        assert restored.fidelity(simulate(circuit)) == pytest.approx(1.0, abs=1e-10)
