"""Unit tests for QuantumCircuit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.errors import CircuitError
from repro.statevector.state import StateVector, simulate


class TestConstruction:
    def test_positive_width_required(self) -> None:
        with pytest.raises(CircuitError):
            QuantumCircuit(0)

    def test_builder_methods_append_gates(self) -> None:
        circ = QuantumCircuit(3)
        circ.h(0).cx(0, 1).rz(0.5, 2).ccx(0, 1, 2).swap(1, 2)
        assert [g.name for g in circ] == ["h", "cx", "rz", "ccx", "swap"]
        assert len(circ) == 5
        assert circ[2].params == (0.5,)

    def test_out_of_range_qubit_rejected(self) -> None:
        circ = QuantumCircuit(2)
        with pytest.raises(CircuitError, match="uses qubit 5"):
            circ.h(5)

    def test_append_prebuilt_gate(self) -> None:
        circ = QuantumCircuit(2)
        circ.append(Gate("cz", (0, 1)))
        assert circ[0].name == "cz"

    def test_extend_and_equality(self) -> None:
        a = QuantumCircuit(2).h(0).cx(0, 1)
        b = QuantumCircuit(2)
        b.extend(a.gates)
        assert a == b
        assert a != QuantumCircuit(2).h(1)

    def test_with_gates_builds_same_width_circuit(self) -> None:
        a = QuantumCircuit(3, name="orig").h(0).cx(0, 1)
        b = a.with_gates(reversed(a.gates))
        assert b.num_qubits == 3
        assert [g.name for g in b] == ["cx", "h"]


class TestStructuralQueries:
    def test_depth_of_parallel_layer_is_one(self) -> None:
        circ = QuantumCircuit(4)
        for q in range(4):
            circ.h(q)
        assert circ.depth() == 1

    def test_depth_of_chain(self) -> None:
        circ = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2).h(2)
        assert circ.depth() == 4

    def test_depth_empty_circuit(self) -> None:
        assert QuantumCircuit(2).depth() == 0

    def test_gate_counts(self) -> None:
        circ = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        assert circ.gate_counts() == {"h": 2, "cx": 1}

    def test_used_qubits(self) -> None:
        circ = QuantumCircuit(5).h(0).cx(2, 4)
        assert circ.used_qubits() == {0, 2, 4}

    def test_involvement_profile_monotone(self) -> None:
        circ = QuantumCircuit(3).h(0).h(0).cx(0, 1).h(2)
        assert circ.involvement_profile() == [1, 1, 2, 3]

    def test_gates_until_full_involvement(self) -> None:
        circ = QuantumCircuit(3).h(0).h(1).h(1).h(2).h(0)
        assert circ.gates_until_full_involvement() == 4


class TestInverse:
    @pytest.mark.parametrize(
        "build",
        [
            lambda c: c.h(0).cx(0, 1),
            lambda c: c.rx(0.3, 0).ry(0.7, 1).rz(1.1, 0),
            lambda c: c.s(0).t(1).sdg(1).tdg(0),
            lambda c: c.sx(0).sy(1),
            lambda c: c.cp(0.4, 0, 1).rzz(0.9, 0, 1).swap(0, 1),
            lambda c: c.ccx(0, 1, 2).ccz(0, 1, 2).u(0.1, 0.2, 0.3, 2),
        ],
    )
    def test_circuit_times_inverse_is_identity(self, build) -> None:
        circ = QuantumCircuit(3)
        build(circ)
        state = StateVector(3).run(circ).run(circ.inverse())
        reference = StateVector(3)
        # Global phase may differ (sx/sy inverses are phase-equivalent).
        assert state.fidelity(reference) == pytest.approx(1.0, abs=1e-12)

    def test_inverse_reverses_order(self) -> None:
        circ = QuantumCircuit(2).h(0).s(1)
        inverse = circ.inverse()
        assert [g.name for g in inverse] == ["sdg", "h"]

    def test_inverse_of_random_circuit_restores_state(self, rng) -> None:
        circ = QuantumCircuit(4)
        names = ["h", "x", "s", "t"]
        for _ in range(30):
            choice = rng.integers(0, 5)
            if choice == 4:
                a, b = rng.choice(4, size=2, replace=False)
                circ.cx(int(a), int(b))
            else:
                circ.add(names[choice], int(rng.integers(0, 4)))
        state = simulate(circ)
        state.run(circ.inverse())
        assert state.fidelity(StateVector(4)) == pytest.approx(1.0, abs=1e-10)


class TestFingerprint:
    @staticmethod
    def base() -> QuantumCircuit:
        circ = QuantumCircuit(3, name="base")
        circ.h(0).cx(0, 1).rz(0.5, 2)
        return circ

    def test_equal_circuits_hash_equal(self) -> None:
        assert self.base().fingerprint() == self.base().fingerprint()

    def test_name_is_excluded(self) -> None:
        renamed = self.base()
        renamed.name = "totally_different"
        assert renamed.fingerprint() == self.base().fingerprint()

    def test_stable_across_releases(self) -> None:
        # The digest is a persisted cache key: pin it so accidental format
        # changes (which would silently invalidate every cache) fail loudly.
        circ = QuantumCircuit(3, name="pinned")
        circ.h(0).cx(0, 1).rz(0.5, 2)
        assert circ.fingerprint() == (
            "fa54b5ab6100b4979a666aa1410af8cf841425f8d03d3917a9e06fc24809fbd2"
        )

    def test_width_perturbation_changes_hash(self) -> None:
        wider = QuantumCircuit(4, name="base")
        wider.h(0).cx(0, 1).rz(0.5, 2)
        assert wider.fingerprint() != self.base().fingerprint()

    def test_gate_name_perturbation_changes_hash(self) -> None:
        changed = QuantumCircuit(3)
        changed.h(0).cz(0, 1).rz(0.5, 2)
        assert changed.fingerprint() != self.base().fingerprint()

    def test_qubit_perturbation_changes_hash(self) -> None:
        changed = QuantumCircuit(3)
        changed.h(0).cx(1, 0).rz(0.5, 2)
        assert changed.fingerprint() != self.base().fingerprint()

    def test_param_perturbation_changes_hash(self) -> None:
        changed = QuantumCircuit(3)
        changed.h(0).cx(0, 1).rz(0.5 + 1e-15, 2)
        assert changed.fingerprint() != self.base().fingerprint()

    def test_gate_order_matters(self) -> None:
        reordered = QuantumCircuit(3)
        reordered.cx(0, 1).h(0).rz(0.5, 2)
        assert reordered.fingerprint() != self.base().fingerprint()

    def test_empty_vs_identity_gate(self) -> None:
        empty = QuantumCircuit(2)
        with_id = QuantumCircuit(2)
        with_id.i(0)
        assert empty.fingerprint() != with_id.fingerprint()
