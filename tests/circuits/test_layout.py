"""Tests for the cache-blocking layout pass."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.layout import (
    apply_layout,
    cache_blocking_layout,
    cache_blocking_swaps,
    cross_chunk_gate_count,
    invert_layout,
    permute_statevector,
    qubit_gate_frequency,
)
from repro.circuits.library import FAMILIES, get_circuit
from repro.errors import CircuitError
from repro.statevector.state import simulate


class TestFrequencyAndCounting:
    def test_qubit_gate_frequency(self) -> None:
        circuit = QuantumCircuit(3).h(0).cx(0, 1).h(0)
        assert qubit_gate_frequency(circuit) == [3, 1, 0]

    def test_cross_chunk_count(self) -> None:
        circuit = QuantumCircuit(4).h(0).h(3).cx(1, 3)
        assert cross_chunk_gate_count(circuit, 2) == 2
        assert cross_chunk_gate_count(circuit, 4) == 0


class TestLayoutConstruction:
    def test_busiest_qubits_move_inside(self) -> None:
        circuit = QuantumCircuit(4)
        for _ in range(5):
            circuit.h(3)
        circuit.h(0)
        mapping = cache_blocking_layout(circuit, 1)
        assert mapping[3] == 0  # the busiest qubit lands at position 0

    def test_mapping_is_permutation(self) -> None:
        for family in FAMILIES:
            circuit = get_circuit(family, 10)
            mapping = cache_blocking_layout(circuit, 4)
            assert sorted(mapping) == list(range(10))
            assert sorted(mapping.values()) == list(range(10))

    def test_layout_never_increases_cross_chunk_gates(self) -> None:
        for family in FAMILIES:
            circuit = get_circuit(family, 10)
            mapping = cache_blocking_layout(circuit, 4)
            remapped = apply_layout(circuit, mapping)
            assert cross_chunk_gate_count(remapped, 4) <= cross_chunk_gate_count(
                circuit, 4
            ), family

    def test_chunk_bits_validation(self) -> None:
        with pytest.raises(CircuitError):
            cache_blocking_layout(QuantumCircuit(3).h(0), 0)


class TestSemantics:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_remapped_state_is_permuted_original(self, family: str) -> None:
        circuit = get_circuit(family, 8)
        mapping = cache_blocking_layout(circuit, 3)
        remapped = apply_layout(circuit, mapping)
        np.testing.assert_allclose(
            simulate(remapped).amplitudes,
            permute_statevector(simulate(circuit).amplitudes, mapping),
            atol=1e-10,
        )

    @given(seed=st.integers(0, 60))
    def test_permutation_roundtrip(self, seed: int) -> None:
        rng = np.random.default_rng(seed)
        n = 6
        perm = rng.permutation(n)
        mapping = {int(q): int(perm[q]) for q in range(n)}
        amplitudes = (rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n))
        forward = permute_statevector(amplitudes, mapping)
        back = permute_statevector(forward, invert_layout(mapping))
        np.testing.assert_allclose(back, amplitudes, atol=1e-12)

    def test_identity_mapping_is_noop(self) -> None:
        amplitudes = np.arange(8, dtype=np.complex128)
        identity = {q: q for q in range(3)}
        np.testing.assert_array_equal(
            permute_statevector(amplitudes, identity), amplitudes
        )

    def test_single_swap_mapping(self) -> None:
        # Swap qubits 0 and 1 of |01>: amplitude moves to |10>.
        amplitudes = np.zeros(4, dtype=np.complex128)
        amplitudes[0b01] = 1.0
        swapped = permute_statevector(amplitudes, {0: 1, 1: 0})
        assert swapped[0b10] == 1.0

    def test_non_permutation_rejected(self) -> None:
        circuit = QuantumCircuit(2).h(0)
        with pytest.raises(CircuitError):
            apply_layout(circuit, {0: 0, 1: 0})
        with pytest.raises(CircuitError):
            permute_statevector(np.zeros(4, dtype=np.complex128), {0: 0, 1: 0})


class TestCacheBlockingSwaps:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_semantics_preserved(self, family: str) -> None:
        circuit = get_circuit(family, 8)
        physical, final = cache_blocking_swaps(circuit, 3)
        np.testing.assert_allclose(
            simulate(physical).amplitudes,
            permute_statevector(simulate(circuit).amplitudes, final),
            atol=1e-10,
        )

    def test_all_original_gates_become_local(self) -> None:
        circuit = get_circuit("qft", 9)
        physical, _ = cache_blocking_swaps(circuit, 4)
        for gate in physical:
            if gate.name != "swap":
                assert all(q < 4 for q in gate.qubits), gate

    def test_hot_qubit_swapped_in_once(self) -> None:
        # Repeated gates on one high qubit pay a single swap.
        circuit = QuantumCircuit(6)
        for _ in range(5):
            circuit.h(5)
        physical, _ = cache_blocking_swaps(circuit, 2)
        assert physical.gate_counts().get("swap", 0) == 1

    def test_final_mapping_is_permutation(self) -> None:
        circuit = get_circuit("hchain", 9)
        _, final = cache_blocking_swaps(circuit, 4)
        assert sorted(final) == list(range(9))
        assert sorted(final.values()) == list(range(9))

    def test_gate_wider_than_chunk_rejected(self) -> None:
        circuit = QuantumCircuit(4).ccx(0, 1, 2)
        with pytest.raises(CircuitError, match="wider than the chunk"):
            cache_blocking_swaps(circuit, 2)

    def test_chunk_bits_validation(self) -> None:
        with pytest.raises(CircuitError):
            cache_blocking_swaps(QuantumCircuit(3).h(0), 0)
