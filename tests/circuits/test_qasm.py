"""Tests for the OpenQASM 2.0 emitter/parser."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import FAMILIES, get_circuit
from repro.circuits.qasm import _eval_param, from_qasm, to_qasm
from repro.errors import QasmError
from repro.statevector.state import simulate


class TestRoundTrip:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_every_family_round_trips(self, family: str) -> None:
        circuit = get_circuit(family, 6)
        recovered = from_qasm(to_qasm(circuit))
        assert recovered.num_qubits == circuit.num_qubits
        assert len(recovered) == len(circuit)
        np.testing.assert_allclose(
            simulate(recovered).amplitudes, simulate(circuit).amplitudes,
            atol=1e-12,
        )

    def test_parametric_gates_round_trip_exactly(self) -> None:
        circuit = QuantumCircuit(2)
        circuit.rx(0.12345678901234567, 0)
        circuit.u(0.1, -0.2, 3.0e-7, 1)
        circuit.cp(math.pi / 3, 0, 1)
        recovered = from_qasm(to_qasm(circuit))
        for original, parsed in zip(circuit, recovered):
            assert original.params == parsed.params  # repr() is exact

    def test_emitted_header(self) -> None:
        text = to_qasm(QuantumCircuit(1).h(0))
        assert text.startswith("OPENQASM 2.0;")
        assert 'include "qelib1.inc";' in text
        assert "qreg q[1];" in text
        assert "h q[0];" in text

    def test_u1_u3_name_mapping(self) -> None:
        circuit = QuantumCircuit(1).p(0.5, 0).u(0.1, 0.2, 0.3, 0)
        text = to_qasm(circuit)
        assert "u1(" in text and "u3(" in text
        recovered = from_qasm(text)
        assert [g.name for g in recovered] == ["p", "u"]


class TestParamExpressions:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("pi", math.pi),
            ("pi/2", math.pi / 2),
            ("-pi/4", -math.pi / 4),
            ("2*pi", 2 * math.pi),
            ("1.5e-3", 1.5e-3),
            ("(pi+1)/2", (math.pi + 1) / 2),
            ("3-1-1", 1.0),
            ("+2", 2.0),
        ],
    )
    def test_expression_values(self, expr: str, expected: float) -> None:
        assert _eval_param(expr) == pytest.approx(expected)

    def test_parses_pi_expression_in_gate(self) -> None:
        circuit = from_qasm(
            'OPENQASM 2.0;\nqreg q[1];\nu1(pi/8) q[0];\n'
        )
        assert circuit[0].params[0] == pytest.approx(math.pi / 8)

    @pytest.mark.parametrize("expr", ["pi)", "foo", "1/0", "2**3", "1+", ""])
    def test_bad_expressions_rejected(self, expr: str) -> None:
        with pytest.raises(QasmError):
            _eval_param(expr)


class TestParserErrors:
    def test_missing_qreg(self) -> None:
        with pytest.raises(QasmError, match="no qreg"):
            from_qasm("OPENQASM 2.0;\n")

    def test_gate_before_qreg(self) -> None:
        with pytest.raises(QasmError, match="before qreg"):
            from_qasm("OPENQASM 2.0;\nh q[0];\nqreg q[1];")

    def test_unsupported_version(self) -> None:
        with pytest.raises(QasmError, match="version"):
            from_qasm("OPENQASM 3.0;\nqreg q[1];")

    def test_unsupported_statement(self) -> None:
        with pytest.raises(QasmError, match="unsupported"):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\ncreg c[1];")

    def test_unknown_register(self) -> None:
        with pytest.raises(QasmError, match="unknown register"):
            from_qasm("OPENQASM 2.0;\nqreg q[2];\nh r[0];")

    def test_multiple_qregs_rejected(self) -> None:
        with pytest.raises(QasmError, match="multiple qreg"):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nqreg r[1];")

    def test_comments_and_blank_lines_ignored(self) -> None:
        circuit = from_qasm(
            "OPENQASM 2.0;\n// a comment\n\nqreg q[1]; // inline\nh q[0];\n"
        )
        assert len(circuit) == 1
