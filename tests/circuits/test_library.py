"""Tests for the benchmark circuit library (paper Table I)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.library import FAMILIES, bv, get_circuit, graph_state, qft
from repro.errors import CircuitError
from repro.statevector.measure import most_probable, probabilities
from repro.statevector.state import StateVector, simulate


class TestRegistry:
    def test_nine_families(self) -> None:
        assert len(FAMILIES) == 9

    @pytest.mark.parametrize("family", FAMILIES + ("grqc",))
    def test_builders_produce_named_circuits(self, family: str) -> None:
        circuit = get_circuit(family, 8)
        assert circuit.num_qubits == 8
        assert circuit.name == f"{family}_8"
        assert len(circuit) > 0

    @pytest.mark.parametrize("family", FAMILIES)
    def test_deterministic_under_seed(self, family: str) -> None:
        assert get_circuit(family, 10, seed=3) == get_circuit(family, 10, seed=3)

    def test_unknown_family_rejected(self) -> None:
        with pytest.raises(CircuitError, match="unknown circuit family"):
            get_circuit("nope", 4)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_every_qubit_is_used(self, family: str) -> None:
        circuit = get_circuit(family, 12)
        assert circuit.used_qubits() == set(range(12))

    @pytest.mark.parametrize("family", FAMILIES)
    def test_states_stay_normalized(self, family: str) -> None:
        state = simulate(get_circuit(family, 8))
        assert state.norm() == pytest.approx(1.0, abs=1e-10)


class TestFunctionalProperties:
    def test_bv_reads_out_the_secret(self) -> None:
        secret = 0b1011001
        state = simulate(bv(8, secret=secret))
        # Data register holds the secret; ancilla (qubit 7) is in |->.
        outcome = most_probable(state)
        assert outcome & 0b1111111 == secret

    def test_bv_rejects_oversized_secret(self) -> None:
        with pytest.raises(ValueError):
            bv(4, secret=1 << 3)

    def test_bv_needs_two_qubits(self) -> None:
        with pytest.raises(ValueError):
            bv(1)

    def test_qft_of_zero_state_is_uniform(self) -> None:
        state = simulate(qft(5))
        np.testing.assert_allclose(
            np.abs(state.amplitudes), np.full(32, 1 / np.sqrt(32)), atol=1e-12
        )

    def test_qft_inverse_qft_is_identity(self) -> None:
        circuit = qft(5)
        state = StateVector(5).run(circuit).run(circuit.inverse())
        assert state.fidelity(StateVector(5)) == pytest.approx(1.0, abs=1e-10)

    def test_qft_approximation_drops_small_rotations(self) -> None:
        exact = qft(8)
        approx = qft(8, approximation_degree=2)
        assert len(approx) < len(exact)
        assert all(
            gate.name != "cp" or abs(gate.qubits[1] - gate.qubits[0]) <= 2
            for gate in approx
        )

    def test_qft_swap_option(self) -> None:
        assert "swap" in qft(6, include_swaps=True).gate_counts()
        assert "swap" not in qft(6).gate_counts()

    def test_graph_state_structure_matches_fig8(self) -> None:
        circuit = graph_state(5)
        names = [g.name for g in circuit]
        assert names == ["h"] * 5 + ["cx"] * 4
        assert [g.qubits for g in circuit[5:]] == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_graph_state_amplitudes_uniform_magnitude(self) -> None:
        # A graph state is |+>^n under CZ; our CX-chain variant still has
        # every amplitude magnitude equal to 2^(-n/2) ... for the CX chain
        # the state is a uniform superposition over a coset, so magnitudes
        # are either 0 or 2^(-(n-?)/2); check normalisation and spread.
        state = simulate(graph_state(4))
        probs = probabilities(state)
        nonzero = probs[probs > 1e-12]
        np.testing.assert_allclose(nonzero, nonzero[0], atol=1e-12)

    def test_hlf_is_clifford_only(self) -> None:
        circuit = get_circuit("hlf", 9)
        assert set(circuit.gate_counts()) <= {"h", "cz", "s"}

    def test_iqp_body_is_diagonal(self) -> None:
        circuit = get_circuit("iqp", 10)
        for gate in circuit:
            assert gate.name == "h" or gate.is_diagonal


class TestInvolvementShapes:
    """Table II's qualitative ordering must hold at any width."""

    def test_iqp_involves_late(self) -> None:
        circuit = get_circuit("iqp", 20)
        fraction = circuit.gates_until_full_involvement() / len(circuit)
        assert fraction > 0.8

    @pytest.mark.parametrize("family", ["qaoa", "qft", "qf", "hchain"])
    def test_early_involvers(self, family: str) -> None:
        circuit = get_circuit(family, 20)
        fraction = circuit.gates_until_full_involvement() / len(circuit)
        assert fraction < 0.2

    def test_iqp_involves_later_than_everything_else(self) -> None:
        fractions = {
            family: get_circuit(family, 16).gates_until_full_involvement()
            / len(get_circuit(family, 16))
            for family in FAMILIES
        }
        assert max(fractions, key=fractions.get) == "iqp"

    def test_rqc_mid_range_involvement(self) -> None:
        circuit = get_circuit("rqc", 20)
        fraction = circuit.gates_until_full_involvement() / len(circuit)
        assert 0.15 < fraction < 0.7


class TestDeepCircuits:
    def test_grqc_is_deeper_than_rqc(self) -> None:
        assert len(get_circuit("grqc", 16)) > len(get_circuit("rqc", 16))

    def test_rqc_depth_parameter_scales_gates(self) -> None:
        shallow = get_circuit("rqc", 16, depth=4)
        deep = get_circuit("rqc", 16, depth=16)
        assert len(deep) > 2 * len(shallow)

    def test_rqc_lazy_hadamards_precede_first_cz(self) -> None:
        circuit = get_circuit("rqc", 12)
        seen_h = set()
        for gate in circuit:
            if gate.name == "h":
                seen_h.update(gate.qubits)
            elif gate.name == "cz":
                assert set(gate.qubits) <= seen_h
