"""Tests for the extension circuits (ghz, w, grover)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.library.extensions import ghz, grover, w_state
from repro.core.simulator import QGpuSimulator
from repro.core.versions import QGPU
from repro.statevector.state import simulate


class TestGhz:
    @pytest.mark.parametrize("n", [2, 3, 6, 10])
    def test_two_equal_amplitudes(self, n: int) -> None:
        state = simulate(ghz(n))
        assert abs(state.amplitudes[0]) ** 2 == pytest.approx(0.5)
        assert abs(state.amplitudes[-1]) ** 2 == pytest.approx(0.5)
        assert np.count_nonzero(np.abs(state.amplitudes) > 1e-12) == 2

    def test_qgpu_pipeline_handles_ghz(self) -> None:
        circuit = ghz(8)
        result = QGpuSimulator(version=QGPU, chunk_bits=3).run(circuit)
        np.testing.assert_allclose(
            result.amplitudes, simulate(circuit).amplitudes, atol=1e-12
        )


class TestWState:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_uniform_single_excitation(self, n: int) -> None:
        state = simulate(w_state(n))
        probs = np.abs(state.amplitudes) ** 2
        hot = {1 << k for k in range(n)}
        for index, p in enumerate(probs):
            if index in hot:
                assert p == pytest.approx(1.0 / n, abs=1e-10)
            else:
                assert p == pytest.approx(0.0, abs=1e-10)


class TestGrover:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_finds_marked_element(self, n: int) -> None:
        marked = (1 << n) - 2
        state = simulate(grover(n, marked=marked))
        assert abs(state.amplitudes[marked]) ** 2 > 0.9

    def test_random_marked_default(self) -> None:
        state = simulate(grover(4, seed=5))
        assert np.max(np.abs(state.amplitudes) ** 2) > 0.9

    def test_invalid_marked_rejected(self) -> None:
        with pytest.raises(ValueError):
            grover(3, marked=8)

    def test_iterations_override(self) -> None:
        # A single iteration on 5 qubits amplifies but does not saturate.
        marked = 7
        one = simulate(grover(5, marked=marked, iterations=1))
        probability = abs(one.amplitudes[marked]) ** 2
        assert 1 / 32 < probability < 0.9
