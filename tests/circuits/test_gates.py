"""Unit tests for the gate registry and Gate instances."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.gates import GATE_SPECS, Gate
from repro.errors import CircuitError

PARAMETERLESS = [name for name, spec in GATE_SPECS.items() if spec.num_params == 0]
PARAMETRIC = [name for name, spec in GATE_SPECS.items() if spec.num_params > 0]


def build_gate(name: str, params: tuple[float, ...] = ()) -> Gate:
    spec = GATE_SPECS[name]
    qubits = tuple(range(spec.num_qubits))
    if not params:
        params = tuple(0.37 * (k + 1) for k in range(spec.num_params))
    return Gate(name, qubits, params)


class TestGateSpecs:
    @pytest.mark.parametrize("name", sorted(GATE_SPECS))
    def test_matrix_is_unitary(self, name: str) -> None:
        matrix = build_gate(name).matrix()
        dim = matrix.shape[0]
        assert matrix.shape == (dim, dim)
        np.testing.assert_allclose(
            matrix @ matrix.conj().T, np.eye(dim), atol=1e-12
        )

    @pytest.mark.parametrize("name", sorted(GATE_SPECS))
    def test_matrix_dimension_matches_qubit_count(self, name: str) -> None:
        spec = GATE_SPECS[name]
        matrix = build_gate(name).matrix()
        assert matrix.shape == (1 << spec.num_qubits, 1 << spec.num_qubits)

    @pytest.mark.parametrize("name", sorted(GATE_SPECS))
    def test_diagonal_flag_matches_matrix(self, name: str) -> None:
        gate = build_gate(name)
        matrix = gate.matrix()
        off_diagonal = matrix - np.diag(np.diag(matrix))
        is_diagonal = bool(np.allclose(off_diagonal, 0))
        assert gate.is_diagonal == is_diagonal

    @pytest.mark.parametrize("name", sorted(GATE_SPECS))
    def test_self_inverse_flag_matches_matrix(self, name: str) -> None:
        spec = GATE_SPECS[name]
        if spec.num_params:
            return  # flag only meaningful for fixed gates
        matrix = build_gate(name).matrix()
        squares_to_identity = bool(
            np.allclose(matrix @ matrix, np.eye(matrix.shape[0]), atol=1e-12)
        )
        assert spec.self_inverse == squares_to_identity

    def test_hadamard_matrix_value(self) -> None:
        h = Gate("h", (0,)).matrix()
        np.testing.assert_allclose(h, np.array([[1, 1], [1, -1]]) / np.sqrt(2))

    def test_cx_permutes_control_set_states(self) -> None:
        cx = Gate("cx", (0, 1)).matrix()
        # Basis order |t c>: control = bit 0.  CX swaps |01> and |11>.
        state = np.zeros(4)
        state[0b01] = 1.0
        np.testing.assert_allclose(cx @ state, np.eye(4)[0b11])

    def test_ccx_only_flips_with_both_controls(self) -> None:
        ccx = Gate("ccx", (0, 1, 2)).matrix()
        for index in range(8):
            out = ccx @ np.eye(8)[index]
            expected = index ^ 0b100 if index & 0b011 == 0b011 else index
            np.testing.assert_allclose(out, np.eye(8)[expected])

    @given(theta=st.floats(-10, 10, allow_nan=False))
    def test_rz_p_phase_relation(self, theta: float) -> None:
        # p(theta) equals rz(theta) up to the global phase e^{i theta/2}.
        rz = Gate("rz", (0,), (theta,)).matrix()
        p = Gate("p", (0,), (theta,)).matrix()
        np.testing.assert_allclose(p, np.exp(1j * theta / 2) * rz, atol=1e-12)


class TestGateValidation:
    def test_unknown_gate_rejected(self) -> None:
        with pytest.raises(CircuitError, match="unknown gate"):
            Gate("frobnicate", (0,))

    def test_wrong_qubit_count_rejected(self) -> None:
        with pytest.raises(CircuitError, match="expects 2 qubits"):
            Gate("cx", (0,))

    def test_wrong_param_count_rejected(self) -> None:
        with pytest.raises(CircuitError, match="expects 1 params"):
            Gate("rx", (0,))

    def test_repeated_qubits_rejected(self) -> None:
        with pytest.raises(CircuitError, match="repeated"):
            Gate("cx", (3, 3))

    def test_negative_qubit_rejected(self) -> None:
        with pytest.raises(CircuitError, match="negative"):
            Gate("x", (-1,))

    def test_remapped_moves_qubits(self) -> None:
        gate = Gate("cx", (0, 1)).remapped({0: 5, 1: 2})
        assert gate.qubits == (5, 2)
        assert gate.name == "cx"

    def test_str_includes_params(self) -> None:
        assert "rx(0.5)" in str(Gate("rx", (3,), (0.5,)))
        assert "[3]" in str(Gate("rx", (3,), (0.5,)))


class TestMatrixMemoization:
    def test_matrix_shared_across_equal_gates(self) -> None:
        # Memoized per (name, params): every h on every qubit shares one
        # matrix object, so the chunked engine never rebuilds it per chunk.
        assert Gate("h", (0,)).matrix() is Gate("h", (5,)).matrix()
        assert Gate("rz", (0,), (0.3,)).matrix() is Gate("rz", (2,), (0.3,)).matrix()
        assert Gate("rz", (0,), (0.3,)).matrix() is not Gate("rz", (0,), (0.4,)).matrix()

    def test_memoized_matrix_is_read_only(self) -> None:
        matrix = Gate("h", (0,)).matrix()
        assert not matrix.flags.writeable
        with pytest.raises(ValueError):
            matrix[0, 0] = 9.0

    def test_diagonal_matches_matrix_diagonal(self) -> None:
        for gate in (Gate("rz", (1,), (0.7,)), Gate("cz", (0, 1)), Gate("t", (0,))):
            np.testing.assert_array_equal(gate.diagonal(), np.diag(gate.matrix()))
            assert not gate.diagonal().flags.writeable
            assert gate.diagonal() is gate.diagonal()

    def test_diagonal_rejects_non_diagonal_gate(self) -> None:
        with pytest.raises(CircuitError, match="not diagonal"):
            Gate("h", (0,)).diagonal()
