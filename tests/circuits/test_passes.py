"""Tests for the transpile-lite passes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.equivalence import states_equivalent, unitaries_equivalent
from repro.circuits.library import FAMILIES, get_circuit
from repro.circuits.passes import (
    cancel_inverse_pairs,
    decompose,
    merge_single_qubit_runs,
    transpile,
)

BASIS = {"id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sy",
         "rx", "ry", "rz", "p", "u", "cx", "cp", "cz"}


def random_circuit(seed: int, num_qubits: int = 4, num_gates: int = 30) -> QuantumCircuit:
    rng = np.random.default_rng(seed)
    circ = QuantumCircuit(num_qubits)
    singles = ["h", "t", "s", "x", "sx"]
    for _ in range(num_gates):
        kind = rng.integers(0, 8)
        if kind < 4:
            circ.add(singles[rng.integers(len(singles))], int(rng.integers(num_qubits)))
        elif kind == 4:
            circ.rz(float(rng.uniform(-3, 3)), int(rng.integers(num_qubits)))
        elif kind == 5:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circ.cx(int(a), int(b))
        elif kind == 6:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circ.rzz(float(rng.uniform(-3, 3)), int(a), int(b))
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circ.swap(int(a), int(b))
    return circ


class TestDecompose:
    @pytest.mark.parametrize(
        "name,qubits,params",
        [
            ("rzz", (0, 1), (0.7,)),
            ("swap", (0, 1), ()),
            ("cy", (0, 1), ()),
            ("crz", (0, 1), (1.1,)),
            ("ccz", (0, 1, 2), ()),
            ("ccx", (0, 1, 2), ()),
            ("ccx", (2, 0, 1), ()),
            ("rzz", (1, 0), (-2.3,)),
        ],
    )
    def test_each_decomposition_is_exact(self, name, qubits, params) -> None:
        circuit = QuantumCircuit(3)
        circuit.add(name, *qubits, params=params)
        lowered = decompose(circuit)
        assert unitaries_equivalent(circuit, lowered)
        assert all(g.name in BASIS for g in lowered)

    def test_basis_gates_untouched(self) -> None:
        circuit = QuantumCircuit(2).h(0).cx(0, 1).cp(0.3, 0, 1)
        assert decompose(circuit).gates == circuit.gates


class TestMergeSingleQubitRuns:
    @given(seed=st.integers(0, 60))
    def test_semantics_preserved(self, seed: int) -> None:
        circuit = random_circuit(seed)
        merged = merge_single_qubit_runs(circuit)
        assert unitaries_equivalent(circuit, merged)

    def test_run_collapses_to_one_u(self) -> None:
        circuit = QuantumCircuit(1).h(0).t(0).h(0).s(0)
        merged = merge_single_qubit_runs(circuit)
        assert len(merged) == 1
        assert merged[0].name == "u"

    def test_singleton_runs_kept_verbatim(self) -> None:
        circuit = QuantumCircuit(2).h(0).cx(0, 1).t(1)
        merged = merge_single_qubit_runs(circuit)
        assert [g.name for g in merged] == ["h", "cx", "t"]

    def test_runs_split_by_two_qubit_gates(self) -> None:
        circuit = QuantumCircuit(2).h(0).t(0).cx(0, 1).h(0).s(0)
        merged = merge_single_qubit_runs(circuit)
        names = [g.name for g in merged]
        assert names.count("u") == 2
        assert "cx" in names


class TestCancelInversePairs:
    def test_simple_cancellations(self) -> None:
        circuit = (
            QuantumCircuit(2)
            .h(0).h(0)
            .s(1).sdg(1)
            .cx(0, 1).cx(0, 1)
            .rz(0.5, 0).rz(-0.5, 0)
        )
        assert len(cancel_inverse_pairs(circuit)) == 0

    def test_cascading_cancellation(self) -> None:
        # h x x h -> h h -> empty.
        circuit = QuantumCircuit(1).h(0).x(0).x(0).h(0)
        assert len(cancel_inverse_pairs(circuit)) == 0

    def test_intervening_gate_blocks_cancellation(self) -> None:
        circuit = QuantumCircuit(1).h(0).t(0).h(0)
        assert len(cancel_inverse_pairs(circuit)) == 3

    def test_disjoint_gate_does_not_block(self) -> None:
        circuit = QuantumCircuit(2).h(0).x(1).h(0)
        result = cancel_inverse_pairs(circuit)
        assert [g.name for g in result] == ["x"]

    def test_different_qubits_do_not_cancel(self) -> None:
        circuit = QuantumCircuit(2).h(0).h(1)
        assert len(cancel_inverse_pairs(circuit)) == 2

    @given(seed=st.integers(0, 60))
    def test_semantics_preserved(self, seed: int) -> None:
        circuit = random_circuit(seed)
        assert unitaries_equivalent(circuit, cancel_inverse_pairs(circuit))


class TestTranspile:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_library_circuits_preserved(self, family: str) -> None:
        circuit = get_circuit(family, 8)
        lowered = transpile(circuit)
        assert states_equivalent(circuit, lowered)
        assert all(g.name in BASIS for g in lowered)

    @given(seed=st.integers(0, 40))
    def test_random_circuits_preserved(self, seed: int) -> None:
        circuit = random_circuit(seed)
        assert unitaries_equivalent(circuit, transpile(circuit))

    def test_basis_only_skips_simplification(self) -> None:
        circuit = QuantumCircuit(1).h(0).h(0)
        assert len(transpile(circuit, basis_only=True)) == 2
        assert len(transpile(circuit)) == 0
