"""Unit and property tests for the gate-dependency DAG."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import GateDag


def random_circuit(num_qubits: int, num_gates: int, seed: int) -> QuantumCircuit:
    rng = np.random.default_rng(seed)
    circ = QuantumCircuit(num_qubits)
    for _ in range(num_gates):
        if rng.random() < 0.5 and num_qubits >= 2:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circ.cx(int(a), int(b))
        else:
            circ.h(int(rng.integers(num_qubits)))
    return circ


class TestDependencies:
    def test_shared_qubit_creates_edge(self) -> None:
        circ = QuantumCircuit(2).h(0).cx(0, 1)
        dag = GateDag(circ)
        assert dag.nodes[1].predecessors == {0}
        assert dag.nodes[0].successors == {1}

    def test_disjoint_gates_are_independent(self) -> None:
        circ = QuantumCircuit(4).h(0).h(1).cx(2, 3)
        dag = GateDag(circ)
        assert all(not node.predecessors for node in dag)
        assert dag.roots() == [0, 1, 2]

    def test_last_writer_rule(self) -> None:
        circ = QuantumCircuit(2).h(0).h(0).h(0)
        dag = GateDag(circ)
        assert dag.nodes[2].predecessors == {1}

    def test_two_qubit_gate_collects_both_qubit_dependencies(self) -> None:
        circ = QuantumCircuit(3).h(0).h(1).cx(0, 1).h(2)
        dag = GateDag(circ)
        assert dag.nodes[2].predecessors == {0, 1}

    def test_fig8_gs5_dependency_structure(self) -> None:
        # Paper Fig. 8: gs_5 = 5 Hadamards then a CNOT chain; CNOT_6 depends
        # on the H gates of its qubits and CNOT_7 depends on CNOT_6.
        circ = QuantumCircuit(5)
        for q in range(5):
            circ.h(q)
        for q in range(4):
            circ.cx(q, q + 1)
        dag = GateDag(circ)
        assert dag.nodes[5].predecessors == {0, 1}  # CNOT(0,1) after H0, H1
        assert dag.nodes[6].predecessors == {5, 2}  # CNOT(1,2) after CNOT(0,1), H2
        assert dag.roots() == [0, 1, 2, 3, 4]


class TestTopologicalOrder:
    @given(seed=st.integers(0, 1000), num_gates=st.integers(1, 60))
    def test_topological_order_is_valid(self, seed: int, num_gates: int) -> None:
        circ = random_circuit(5, num_gates, seed)
        dag = GateDag(circ)
        order = dag.topological_order()
        assert dag.is_valid_order(order)

    def test_identity_order_is_valid(self) -> None:
        circ = random_circuit(4, 30, seed=7)
        dag = GateDag(circ)
        assert dag.is_valid_order(list(range(len(circ))))

    def test_violating_order_detected(self) -> None:
        circ = QuantumCircuit(2).h(0).cx(0, 1)
        dag = GateDag(circ)
        assert not dag.is_valid_order([1, 0])

    def test_non_permutation_rejected(self) -> None:
        circ = QuantumCircuit(2).h(0).cx(0, 1)
        dag = GateDag(circ)
        assert not dag.is_valid_order([0, 0])
        assert not dag.is_valid_order([0])

    def test_edges_listed_once_per_dependency(self) -> None:
        circ = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        dag = GateDag(circ)
        assert dag.as_edges() == [(0, 2), (1, 2)]


class TestDiagonalCommutation:
    def test_diagonal_gates_commute_when_enabled(self) -> None:
        circ = QuantumCircuit(2).rz(0.3, 0).rz(0.5, 0)
        conservative = GateDag(circ)
        relaxed = GateDag(circ, commute_diagonals=True)
        assert conservative.nodes[1].predecessors == {0}
        assert relaxed.nodes[1].predecessors == set()

    def test_non_diagonal_after_diagonals_depends_on_all(self) -> None:
        circ = QuantumCircuit(2).rz(0.3, 0).cp(0.2, 0, 1).h(0)
        relaxed = GateDag(circ, commute_diagonals=True)
        assert relaxed.nodes[2].predecessors == {0, 1}

    def test_diagonal_depends_on_last_non_diagonal(self) -> None:
        circ = QuantumCircuit(1).h(0).rz(0.1, 0).rz(0.2, 0)
        relaxed = GateDag(circ, commute_diagonals=True)
        assert relaxed.nodes[1].predecessors == {0}
        assert relaxed.nodes[2].predecessors == {0}

    @given(seed=st.integers(0, 500))
    def test_relaxed_dag_is_a_weaker_constraint_set(self, seed: int) -> None:
        # Every order the conservative DAG admits must also satisfy the
        # relaxed DAG (it can have *more* explicit edges - a non-diagonal
        # gate lists every trailing diagonal - but never stronger ordering).
        rng = np.random.default_rng(seed)
        circ = QuantumCircuit(4)
        for _ in range(40):
            k = rng.integers(0, 4)
            if k == 0:
                circ.h(int(rng.integers(4)))
            elif k == 1:
                circ.rz(0.3, int(rng.integers(4)))
            elif k == 2:
                a, b = rng.choice(4, size=2, replace=False)
                circ.cz(int(a), int(b))
            else:
                a, b = rng.choice(4, size=2, replace=False)
                circ.cx(int(a), int(b))
        relaxed_dag = GateDag(circ, commute_diagonals=True)
        conservative_order = GateDag(circ).topological_order()
        assert relaxed_dag.is_valid_order(conservative_order)
        assert relaxed_dag.is_valid_order(relaxed_dag.topological_order())
