"""Tests for equivalence checking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.equivalence import (
    circuit_unitary,
    states_equivalent,
    unitaries_equivalent,
)
from repro.errors import SimulationError


class TestCircuitUnitary:
    def test_identity_circuit(self) -> None:
        np.testing.assert_allclose(
            circuit_unitary(QuantumCircuit(2)), np.eye(4)
        )

    def test_x_gate_unitary(self) -> None:
        unitary = circuit_unitary(QuantumCircuit(1).x(0))
        np.testing.assert_allclose(unitary, [[0, 1], [1, 0]])

    def test_cx_unitary_qubit_order(self) -> None:
        # cx(control=0, target=1): |01> -> |11> (qubit 0 = LSB).
        unitary = circuit_unitary(QuantumCircuit(2).cx(0, 1))
        state = np.zeros(4)
        state[0b01] = 1.0
        np.testing.assert_allclose(unitary @ state, np.eye(4)[0b11])

    def test_composition_order(self) -> None:
        circuit = QuantumCircuit(1).h(0).t(0)
        expected = (
            QuantumCircuit(1).t(0)[0].matrix() @ QuantumCircuit(1).h(0)[0].matrix()
        )
        np.testing.assert_allclose(circuit_unitary(circuit), expected, atol=1e-12)

    def test_width_limit(self) -> None:
        with pytest.raises(SimulationError):
            circuit_unitary(QuantumCircuit(13))


class TestEquivalence:
    def test_global_phase_ignored_by_default(self) -> None:
        a = QuantumCircuit(1).rz(0.8, 0)
        b = QuantumCircuit(1).p(0.8, 0)  # rz * global phase
        assert unitaries_equivalent(a, b)
        assert not unitaries_equivalent(a, b, up_to_global_phase=False)

    def test_different_unitaries_detected(self) -> None:
        assert not unitaries_equivalent(
            QuantumCircuit(1).h(0), QuantumCircuit(1).x(0)
        )

    def test_states_weaker_than_unitaries(self) -> None:
        # z|0> = |0>: state-equivalent to identity, not unitary-equivalent.
        a = QuantumCircuit(1).z(0)
        b = QuantumCircuit(1)
        assert states_equivalent(a, b)
        assert not unitaries_equivalent(a, b)

    def test_width_mismatch_is_inequivalent(self) -> None:
        assert not states_equivalent(QuantumCircuit(1).h(0), QuantumCircuit(2).h(0))
        assert not unitaries_equivalent(QuantumCircuit(1), QuantumCircuit(2))

    def test_phase_alignment_is_tie_stable(self) -> None:
        # Regression: matrices whose largest entries tie in magnitude used
        # to strip inconsistent phases; pairwise overlap alignment is
        # position-independent.
        a = QuantumCircuit(2).crz(1.1, 0, 1)
        b = (
            QuantumCircuit(2)
            .rz(0.55, 1).cx(0, 1).rz(-0.55, 1).cx(0, 1)
        )
        assert unitaries_equivalent(a, b)
