"""Fuzz tests: the QASM parser must fail cleanly, never crash.

Any byte soup handed to ``from_qasm`` must either parse (for valid inputs)
or raise :class:`~repro.errors.QasmError` - no other exception type may
escape.  Generated circuits must always round-trip exactly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATE_SPECS
from repro.circuits.qasm import from_qasm, to_qasm
from repro.errors import QasmError
from repro.statevector.state import simulate


class TestParserRobustness:
    @given(text=st.text(max_size=300))
    def test_arbitrary_text_never_crashes(self, text: str) -> None:
        try:
            from_qasm(text)
        except QasmError:
            pass  # clean rejection is the contract

    @given(
        text=st.text(
            alphabet="qregOPENQASM2.0;[]() hcxpiu13,*/+-\n",
            max_size=200,
        )
    )
    def test_qasm_flavoured_soup_never_crashes(self, text: str) -> None:
        try:
            from_qasm(text)
        except QasmError:
            pass

    @given(seed=st.integers(0, 500))
    def test_generated_circuits_always_round_trip(self, seed: int) -> None:
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(1, 7))
        circuit = QuantumCircuit(num_qubits)
        names = sorted(GATE_SPECS)
        for _ in range(int(rng.integers(0, 20))):
            name = names[rng.integers(len(names))]
            spec = GATE_SPECS[name]
            if spec.num_qubits > num_qubits:
                continue
            qubits = tuple(
                int(q)
                for q in rng.choice(num_qubits, size=spec.num_qubits, replace=False)
            )
            params = tuple(float(x) for x in rng.uniform(-7, 7, spec.num_params))
            circuit.add(name, *qubits, params=params)
        recovered = from_qasm(to_qasm(circuit))
        assert len(recovered) == len(circuit)
        np.testing.assert_allclose(
            simulate(recovered).amplitudes,
            simulate(circuit).amplitudes,
            atol=1e-10,
        )
