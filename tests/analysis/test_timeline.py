"""Tests for the ASCII Gantt renderer."""

from __future__ import annotations

from repro.analysis.timeline import gantt
from repro.core.schedule import GateStreamPlan, stream_makespan
from repro.hardware.events import EventTimeline
from repro.hardware.pipeline import StageTimes


class TestGantt:
    def test_empty_timeline(self) -> None:
        timeline = EventTimeline()
        timeline.add("a", "gpu", 0.0)
        assert gantt(timeline.run()) == "(empty timeline)"

    def test_single_busy_resource_fully_filled(self) -> None:
        timeline = EventTimeline()
        timeline.add("a", "gpu", 4.0)
        text = gantt(timeline.run(), width=16)
        row = text.splitlines()[0]
        assert row.count("#") == 16

    def test_idle_gaps_rendered(self) -> None:
        timeline = EventTimeline()
        timeline.add("a", "gpu", 1.0)
        timeline.add("b", "link", 1.0, deps=("a",))
        timeline.add("c", "gpu", 1.0, deps=("b",))
        text = gantt(timeline.run(), width=30)
        gpu_row = next(line for line in text.splitlines() if "gpu" in line)
        assert "." in gpu_row and "#" in gpu_row

    def test_resource_selection_and_order(self) -> None:
        plans = [GateStreamPlan("g", 2, StageTimes(1, 1, 1))]
        result = stream_makespan(plans)
        text = gantt(result, ["d2h", "h2d"])
        lines = text.splitlines()
        assert lines[0].strip().startswith("d2h")
        assert lines[1].strip().startswith("h2d")

    def test_overlap_visible(self) -> None:
        # In a double-buffered pipeline H2D and D2H are busy concurrently;
        # both rows must show mid-timeline activity.
        plans = [GateStreamPlan("g", 6, StageTimes(1.0, 0.1, 1.0))]
        text = gantt(stream_makespan(plans), ["h2d", "d2h"], width=40)
        h2d_row, d2h_row = text.splitlines()[:2]
        middle = slice(15, 25)
        assert "#" in h2d_row[h2d_row.index("|"):][middle]
        assert "#" in d2h_row[d2h_row.index("|"):][middle]
