"""Tests for the ASCII line plotter."""

from __future__ import annotations

from repro.analysis.asciiplot import line_plot


class TestLinePlot:
    def test_empty_series(self) -> None:
        assert line_plot({}) == "(no data)"

    def test_single_rising_series(self) -> None:
        text = line_plot({"ramp": [0, 1, 2, 3, 4]}, width=20, height=5)
        lines = text.splitlines()
        assert len(lines) == 5 + 2  # grid + axis + legend
        # The mark appears in the top row at the right edge.
        assert "o" in lines[0]
        assert lines[0].rstrip().endswith("o")

    def test_legend_lists_all_series(self) -> None:
        text = line_plot({"a": [1], "b": [2], "c": [3]})
        assert "o=a" in text and "x=b" in text and "*=c" in text

    def test_y_max_override_clips_scale(self) -> None:
        text = line_plot({"s": [0, 10]}, y_max=20.0, width=10, height=5)
        assert text.splitlines()[0].startswith(f"{20.0:8.2g}")

    def test_labels_rendered(self) -> None:
        text = line_plot({"s": [1, 2]}, x_label="gates", y_label="qubits")
        assert text.splitlines()[0] == "qubits"
        assert "gates" in text

    def test_constant_series_renders_flat_top(self) -> None:
        text = line_plot({"flat": [5, 5, 5, 5]}, width=12, height=4)
        top = text.splitlines()[0]
        assert top.count("o") == 12
