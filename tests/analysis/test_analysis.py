"""Tests for breakdowns, rooflines, amplitude snapshots and tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.amplitudes import amplitude_snapshots
from repro.analysis.breakdown import average_breakdown, breakdown
from repro.analysis.roofline import roofline_ceiling, roofline_point
from repro.analysis.tables import format_normalized, format_table
from repro.circuits.library import get_circuit
from repro.core.simulator import QGpuSimulator
from repro.core.versions import BASELINE, NAIVE, QGPU
from repro.errors import SimulationError
from repro.hardware.specs import P100, V100_16GB
from repro.statevector.state import simulate


class TestBreakdown:
    def test_shares_sum_to_at_most_one(self) -> None:
        circuit = get_circuit("qft", 31)
        for version in (BASELINE, NAIVE, QGPU):
            result = QGpuSimulator(version=version).estimate(circuit)
            share = breakdown(result)
            assert 0 <= share.cpu <= 1 and 0 <= share.transfer <= 1
            assert share.other >= 0

    def test_average_breakdown(self) -> None:
        circuit = get_circuit("qft", 31)
        shares = [
            breakdown(QGpuSimulator(version=v).estimate(circuit))
            for v in (BASELINE, NAIVE)
        ]
        mean = average_breakdown(shares)
        assert mean["cpu"] == pytest.approx((shares[0].cpu + shares[1].cpu) / 2)

    def test_average_of_nothing(self) -> None:
        assert average_breakdown([]) == {
            "cpu": 0.0, "gpu": 0.0, "transfer": 0.0, "codec": 0.0,
        }


class TestRoofline:
    def test_ceiling_is_min_of_bounds(self) -> None:
        low_intensity = roofline_ceiling(V100_16GB, 0.01)
        assert low_intensity == pytest.approx(0.01 * V100_16GB.mem_bandwidth)
        high_intensity = roofline_ceiling(V100_16GB, 1e6)
        assert high_intensity == V100_16GB.fp64_flops

    def test_qcs_points_are_memory_bound(self) -> None:
        circuit = get_circuit("qft", 30)
        result = QGpuSimulator(version=QGPU).estimate(circuit)
        point = roofline_point(result, P100)
        assert point.memory_bound
        assert point.arithmetic_intensity < 1.0  # well under ridge point
        assert 0 <= point.efficiency <= 1.0

    def test_baseline_collapses_past_gpu_memory(self) -> None:
        small = QGpuSimulator(version=BASELINE).estimate(get_circuit("qft", 29))
        large = QGpuSimulator(version=BASELINE).estimate(get_circuit("qft", 33))
        assert (
            roofline_point(large, P100).achieved_flops
            < 0.1 * roofline_point(small, P100).achieved_flops
        )


class TestAmplitudeSnapshots:
    def test_snapshots_match_direct_simulation(self) -> None:
        circuit = get_circuit("hchain", 8)
        snapshots = amplitude_snapshots(circuit, [0, 10, len(circuit)])
        assert snapshots[0].nonzero_fraction == pytest.approx(1 / 256)
        np.testing.assert_allclose(
            snapshots[-1].amplitudes, simulate(circuit).amplitudes, atol=1e-12
        )
        assert snapshots[-1].involved_qubits == 8

    def test_nonzero_fraction_grows(self) -> None:
        circuit = get_circuit("hchain", 10)
        snapshots = amplitude_snapshots(circuit, [0, 30, 60, 90])
        fractions = [s.nonzero_fraction for s in snapshots]
        assert fractions == sorted(fractions)

    def test_checkpoint_validation(self) -> None:
        circuit = get_circuit("gs", 6)
        with pytest.raises(SimulationError):
            amplitude_snapshots(circuit, [5, 2])
        with pytest.raises(SimulationError):
            amplitude_snapshots(circuit, [len(circuit) + 1])


class TestTables:
    def test_format_table_alignment(self) -> None:
        text = format_table(
            ["name", "value"], [["a", 1.0], ["long_name", 123.456]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # All rows equal width.
        assert len({len(line) for line in lines[2:]}) == 1

    def test_float_formatting(self) -> None:
        text = format_table(["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_format_normalized(self) -> None:
        assert format_normalized(0.2814) == "0.281x"
