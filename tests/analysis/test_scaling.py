"""Tests for the distributed scaling projection."""

from __future__ import annotations

import pytest

from repro.analysis.scaling import (
    ClusterSpec,
    estimate_distributed,
    max_cluster_qubits,
)
from repro.circuits.library import get_circuit
from repro.errors import HardwareModelError
from repro.hardware.specs import PAPER_MACHINE, V100_MACHINE


class TestClusterSpec:
    def test_power_of_two_enforced(self) -> None:
        with pytest.raises(HardwareModelError):
            ClusterSpec(V100_MACHINE, 3)
        with pytest.raises(HardwareModelError):
            ClusterSpec(V100_MACHINE, 0)

    def test_node_bits(self) -> None:
        assert ClusterSpec(V100_MACHINE, 1).node_bits == 0
        assert ClusterSpec(V100_MACHINE, 8).node_bits == 3

    def test_bad_network(self) -> None:
        with pytest.raises(HardwareModelError):
            ClusterSpec(V100_MACHINE, 2, network_bandwidth=0)


class TestCapacity:
    def test_single_node_matches_host_limit(self) -> None:
        assert max_cluster_qubits(ClusterSpec(PAPER_MACHINE, 1)) == 34

    def test_each_doubling_adds_one_qubit(self) -> None:
        widths = [
            max_cluster_qubits(ClusterSpec(V100_MACHINE, 2**k)) for k in range(5)
        ]
        assert widths == [widths[0] + k for k in range(5)]


class TestEstimates:
    def test_single_node_has_no_exchanges(self) -> None:
        estimate = estimate_distributed(
            get_circuit("gs", 30), ClusterSpec(V100_MACHINE, 1)
        )
        assert estimate.exchange_gates == 0
        assert estimate.exchange_seconds == 0.0
        assert estimate.total_seconds == estimate.local_seconds

    def test_more_nodes_faster_but_less_efficient(self) -> None:
        circuit = get_circuit("qft", 31)
        one = estimate_distributed(circuit, ClusterSpec(V100_MACHINE, 1))
        four = estimate_distributed(circuit, ClusterSpec(V100_MACHINE, 4))
        assert four.total_seconds < one.total_seconds
        assert four.total_seconds > one.total_seconds / 4.5
        assert four.exchange_gates > 0

    def test_pruning_reduces_both_components(self) -> None:
        circuit = get_circuit("iqp", 31)
        cluster = ClusterSpec(V100_MACHINE, 4)
        pruned = estimate_distributed(circuit, cluster, pruning=True)
        unpruned = estimate_distributed(circuit, cluster, pruning=False)
        assert pruned.local_seconds < unpruned.local_seconds
        assert pruned.exchange_seconds <= unpruned.exchange_seconds

    def test_compression_scales_exchange(self) -> None:
        circuit = get_circuit("qft", 31)
        cluster = ClusterSpec(V100_MACHINE, 4)
        full = estimate_distributed(circuit, cluster, compression_ratio=1.0)
        half = estimate_distributed(circuit, cluster, compression_ratio=0.5)
        assert half.exchange_seconds == pytest.approx(0.5 * full.exchange_seconds)

    def test_oversized_state_rejected(self) -> None:
        with pytest.raises(HardwareModelError, match="cluster holds"):
            estimate_distributed(
                get_circuit("gs", 36), ClusterSpec(V100_MACHINE, 2)
            )
