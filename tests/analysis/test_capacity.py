"""Tests for compressed host-capacity analysis."""

from __future__ import annotations

import pytest

from repro.analysis.capacity import (
    CapacityGain,
    capacity_gain,
    fits_host,
    host_footprint_bytes,
    max_qubits,
)
from repro.hardware.specs import AMP_BYTES, PAPER_MACHINE, V100_MACHINE


class TestFootprint:
    def test_uncompressed_footprint(self) -> None:
        assert host_footprint_bytes(10) == pytest.approx(AMP_BYTES * 1024 * 1.05)

    def test_ratio_scales_linearly(self) -> None:
        assert host_footprint_bytes(20, 0.5) == pytest.approx(
            0.5 * host_footprint_bytes(20, 1.0)
        )

    def test_ratio_bounds(self) -> None:
        with pytest.raises(ValueError):
            host_footprint_bytes(10, 0.0)
        with pytest.raises(ValueError):
            host_footprint_bytes(10, 1.5)


class TestCapacity:
    def test_paper_limits(self) -> None:
        # Section V-A: 34 qubits max in 384 GiB; Section V-D hosts stop at 32.
        assert max_qubits(PAPER_MACHINE) == 34
        assert max_qubits(V100_MACHINE) == 32

    def test_fits_host_boundary(self) -> None:
        assert fits_host(34, PAPER_MACHINE)
        assert not fits_host(35, PAPER_MACHINE)

    def test_compression_extends_capacity(self) -> None:
        # Ratio 0.19 (qft-like): two extra qubits in the same DRAM.
        assert max_qubits(PAPER_MACHINE, 0.19) == 36

    def test_capacity_gain_record(self) -> None:
        gain = capacity_gain("qft", PAPER_MACHINE, 0.19)
        assert isinstance(gain, CapacityGain)
        assert gain.extra_qubits == 2
        assert gain.qubits_uncompressed == 34
