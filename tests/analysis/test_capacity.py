"""Tests for compressed host-capacity analysis."""

from __future__ import annotations

import pytest

from repro.analysis.capacity import (
    CapacityGain,
    capacity_gain,
    fits_host,
    host_footprint_bytes,
    max_qubits,
)
from repro.hardware.specs import AMP_BYTES, PAPER_MACHINE, V100_MACHINE


class TestFootprint:
    def test_uncompressed_footprint(self) -> None:
        assert host_footprint_bytes(10) == pytest.approx(AMP_BYTES * 1024 * 1.05)

    def test_ratio_scales_linearly(self) -> None:
        assert host_footprint_bytes(20, 0.5) == pytest.approx(
            0.5 * host_footprint_bytes(20, 1.0)
        )

    def test_nonpositive_ratio_rejected(self) -> None:
        # A non-positive ratio used to silently produce zero/negative
        # footprints downstream; it is now a hard error.
        with pytest.raises(ValueError, match="compression_ratio must be > 0"):
            host_footprint_bytes(10, 0.0)
        with pytest.raises(ValueError, match="compression_ratio must be > 0"):
            host_footprint_bytes(10, -0.5)

    def test_expansion_ratio_allowed(self) -> None:
        # Ratios above 1 model codec expansion (incompressible streams
        # plus framing overhead) and scale the footprint up honestly.
        assert host_footprint_bytes(10, 1.5) == pytest.approx(
            1.5 * host_footprint_bytes(10, 1.0)
        )

    def test_expansion_shrinks_capacity(self) -> None:
        assert max_qubits(PAPER_MACHINE, 2.0) == 33  # one qubit lost to expansion

    def test_zero_qubit_state(self) -> None:
        # A 0-qubit register is one amplitude: the smallest legal footprint.
        assert host_footprint_bytes(0) == pytest.approx(AMP_BYTES * 1.05)
        assert fits_host(0, PAPER_MACHINE)

    def test_one_qubit_state(self) -> None:
        assert host_footprint_bytes(1) == pytest.approx(2 * AMP_BYTES * 1.05)
        assert host_footprint_bytes(1, 0.5) == pytest.approx(AMP_BYTES * 1.05)

    def test_negative_qubits_rejected(self) -> None:
        with pytest.raises(ValueError, match="num_qubits must be >= 0"):
            host_footprint_bytes(-1)


class TestCapacity:
    def test_paper_limits(self) -> None:
        # Section V-A: 34 qubits max in 384 GiB; Section V-D hosts stop at 32.
        assert max_qubits(PAPER_MACHINE) == 34
        assert max_qubits(V100_MACHINE) == 32

    def test_fits_host_boundary(self) -> None:
        assert fits_host(34, PAPER_MACHINE)
        assert not fits_host(35, PAPER_MACHINE)

    def test_compression_extends_capacity(self) -> None:
        # Ratio 0.19 (qft-like): two extra qubits in the same DRAM.
        assert max_qubits(PAPER_MACHINE, 0.19) == 36

    def test_capacity_gain_record(self) -> None:
        gain = capacity_gain("qft", PAPER_MACHINE, 0.19)
        assert isinstance(gain, CapacityGain)
        assert gain.extra_qubits == 2
        assert gain.qubits_uncompressed == 34
