"""Tests for CRC guards, norm checks, and the transfer guard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FaultInjectionError, IntegrityError
from repro.reliability import (
    ChunkTransferGuard,
    FaultEvent,
    FaultKind,
    FaultPlan,
    RecoveryPolicy,
    check_norm,
    chunk_crc32,
    verify_chunk,
)


@pytest.fixture
def chunk(rng) -> np.ndarray:
    return (rng.normal(size=64) + 1j * rng.normal(size=64)).astype(np.complex128)


class TestCrc:
    def test_crc_stable(self, chunk) -> None:
        assert chunk_crc32(chunk) == chunk_crc32(chunk.copy())

    def test_any_bit_flip_detected(self, chunk) -> None:
        crc = chunk_crc32(chunk)
        for bit in (0, 7, 100, 64 * 16 * 8 - 1):
            corrupted = chunk.copy()
            raw = corrupted.view(np.uint8)
            raw[bit // 8] ^= np.uint8(1 << (bit % 8))
            with pytest.raises(IntegrityError, match="CRC32"):
                verify_chunk(corrupted, crc)

    def test_clean_chunk_verifies(self, chunk) -> None:
        verify_chunk(chunk, chunk_crc32(chunk))


class TestNorm:
    def test_normalised_state_passes(self) -> None:
        state = np.zeros(16, dtype=np.complex128)
        state[0] = 1.0
        assert check_norm(state) == pytest.approx(1.0)

    def test_chunk_list_accepted(self) -> None:
        chunks = [np.full(4, 0.25 + 0j), np.full(4, 0.25 + 0j)]
        chunks[0] *= np.sqrt(1 / (8 * 0.0625))
        chunks[1] *= np.sqrt(1 / (8 * 0.0625))
        check_norm(chunks, tolerance=1e-9)

    def test_violation_raises(self) -> None:
        state = np.zeros(8, dtype=np.complex128)
        state[0] = 0.9
        with pytest.raises(IntegrityError, match="norm conservation"):
            check_norm(state)


class TestGuardRecovery:
    def test_faultless_guard_is_identity(self, chunk) -> None:
        guard = ChunkTransferGuard()
        received = guard.transfer(chunk)
        np.testing.assert_array_equal(received.view(np.uint64), chunk.view(np.uint64))
        assert received is not chunk  # a copy, like a real transfer

    @pytest.mark.parametrize(
        "kind", [FaultKind.BIT_FLIP, FaultKind.TRUNCATION, FaultKind.DROP]
    )
    def test_single_fault_recovers_bit_identical(self, chunk, kind) -> None:
        plan = FaultPlan(seed=0, forced=(FaultEvent(kind, 0, 0, attempt=0, detail=13),))
        guard = ChunkTransferGuard(plan)
        guard.begin_gate(0)
        received = guard.transfer(chunk)
        np.testing.assert_array_equal(received.view(np.uint64), chunk.view(np.uint64))
        assert guard.report.retries == 1
        assert guard.report.faults[kind.value] == 1

    def test_exhausted_retries_raise(self, chunk) -> None:
        forced = tuple(
            FaultEvent(FaultKind.BIT_FLIP, 0, 0, attempt=a) for a in range(4)
        )
        guard = ChunkTransferGuard(FaultPlan(seed=0, forced=forced))
        guard.begin_gate(0)
        with pytest.raises(FaultInjectionError, match="after 4 attempts"):
            guard.transfer(chunk)

    def test_strict_policy_raises_on_detection(self, chunk) -> None:
        plan = FaultPlan(seed=0, forced=(FaultEvent(FaultKind.BIT_FLIP, 0, 0),))
        guard = ChunkTransferGuard(
            plan, RecoveryPolicy(max_transfer_attempts=1, on_fault="raise")
        )
        guard.begin_gate(0)
        with pytest.raises(IntegrityError, match="forbids retry"):
            guard.transfer(chunk)

    def test_crc_off_lets_corruption_through(self, chunk) -> None:
        plan = FaultPlan(seed=0, forced=(FaultEvent(FaultKind.BIT_FLIP, 0, 0, detail=5),))
        guard = ChunkTransferGuard(plan, RecoveryPolicy(verify_crc=False))
        guard.begin_gate(0)
        received = guard.transfer(chunk)
        assert not np.array_equal(received.view(np.uint64), chunk.view(np.uint64))

    def test_drop_detected_even_without_crc(self, chunk) -> None:
        plan = FaultPlan(seed=0, forced=(FaultEvent(FaultKind.DROP, 0, 0),))
        guard = ChunkTransferGuard(plan, RecoveryPolicy(verify_crc=False))
        guard.begin_gate(0)
        received = guard.transfer(chunk)  # retried: a missing chunk is always seen
        np.testing.assert_array_equal(received.view(np.uint64), chunk.view(np.uint64))


class TestCodecDegradation:
    def test_compression_disabled_after_limit(self, chunk) -> None:
        forced = tuple(
            FaultEvent(FaultKind.DECODE, g, 0, attempt=0) for g in range(3)
        )
        guard = ChunkTransferGuard(
            FaultPlan(seed=0, forced=forced),
            RecoveryPolicy(codec_fault_limit=3),
            compression=True,
        )
        for gate in range(5):
            guard.begin_gate(gate)
            guard.transfer(chunk)
        assert guard.report.compression_disabled_at_gate == 2
        assert not guard.compression_enabled
        assert guard.report.faults[FaultKind.DECODE.value] == 3

    def test_codec_faults_ignored_without_compression(self, chunk) -> None:
        guard = ChunkTransferGuard(
            FaultPlan(seed=0, codec_rate=1.0), compression=False
        )
        guard.begin_gate(0)
        guard.transfer(chunk)
        assert guard.report.total_faults == 0
