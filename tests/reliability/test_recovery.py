"""End-to-end recovery properties: faulted and resumed runs stay bit-exact.

These are the acceptance properties of the reliability layer:

* a run with injected transfer corruption + retry policy completes with a
  final state bit-identical to a fault-free run;
* checkpoint -> kill -> resume at any gate reproduces the uninterrupted
  final state bit-exactly;
* the same fault-plan seed yields identical injected faults and identical
  recovered results across runs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.library import get_circuit
from repro.core.simulator import QGpuSimulator
from repro.errors import CheckpointError, IntegrityError, SimulationError
from repro.reliability import FaultPlan, RecoveryPolicy


def _bits(clean_result) -> np.ndarray:
    return clean_result.amplitudes.view(np.uint64)


class TestFaultedRunsAreBitExact:
    @pytest.mark.parametrize("family", ["bv", "qft", "qaoa"])
    def test_recovered_run_matches_fault_free(self, family: str) -> None:
        circuit = get_circuit(family, 8)
        # Guarded runs bypass gate fusion (injection order is per original
        # gate), so the fault-free comparator pins fusion off too: the
        # bit-exactness contract lives on the per-gate path.
        clean = QGpuSimulator(fusion="off").run(circuit)
        plan = FaultPlan(seed=42, transfer_rate=0.08, codec_rate=0.03)
        faulty = QGpuSimulator(fault_plan=plan).run(circuit)
        assert faulty.reliability.total_faults > 0
        np.testing.assert_array_equal(_bits(clean), _bits(faulty))

    def test_same_seed_identical_faults_and_results(self) -> None:
        circuit = get_circuit("qft", 8)
        plan = FaultPlan(seed=99, transfer_rate=0.1, codec_rate=0.05)
        first = QGpuSimulator(fault_plan=plan).run(circuit)
        second = QGpuSimulator(fault_plan=plan).run(circuit)
        assert first.reliability.faults == second.reliability.faults
        assert first.reliability.retries == second.reliability.retries
        np.testing.assert_array_equal(_bits(first), _bits(second))

    def test_norm_guard_catches_unchecked_corruption(self) -> None:
        circuit = get_circuit("qft", 6)
        plan = FaultPlan(seed=5, transfer_rate=0.3)
        policy = RecoveryPolicy(verify_crc=False, norm_check_every=1)
        with pytest.raises(IntegrityError, match="norm conservation"):
            QGpuSimulator(fault_plan=plan, reliability_policy=policy).run(circuit)

    def test_oom_degradation_halves_chunks_and_stays_exact(self) -> None:
        circuit = get_circuit("bv", 8)
        clean = QGpuSimulator(fusion="off").run(circuit)
        degraded = QGpuSimulator(fault_plan=FaultPlan(seed=1, oom_failures=2)).run(circuit)
        assert degraded.reliability.degraded_chunk_bits is not None
        assert degraded.state.chunk_bits < clean.state.chunk_bits
        np.testing.assert_array_equal(_bits(clean), _bits(degraded))


class TestCheckpointResume:
    @settings(max_examples=12, deadline=None)
    @given(
        family=st.sampled_from(["bv", "qft", "qaoa", "gs"]),
        kill_fraction=st.floats(min_value=0.05, max_value=0.95),
        every=st.integers(min_value=1, max_value=7),
    )
    def test_kill_resume_is_bit_exact(
        self, tmp_path_factory, family: str, kill_fraction: float, every: int
    ) -> None:
        circuit = get_circuit(family, 7)
        kill_at = max(1, int(len(circuit) * kill_fraction))
        path = tmp_path_factory.mktemp("ckpt") / "run.qgck"
        # Checkpointed/resumed runs bypass fusion (the cursor counts
        # original gates), so the uninterrupted reference must too.
        sim = QGpuSimulator(fusion="off")
        uninterrupted = sim.run(circuit)
        interrupted = sim.run(
            circuit, checkpoint_every=every, checkpoint_path=path, stop_after=kill_at
        )
        assert interrupted.interrupted_at == kill_at
        if not path.exists():
            return  # killed before the first checkpoint; nothing to resume
        resumed = sim.run(circuit, resume_from=path)
        assert resumed.reliability.resumed_from_gate is not None
        np.testing.assert_array_equal(_bits(uninterrupted), _bits(resumed))
        assert resumed.chunk_updates_total == uninterrupted.chunk_updates_total
        assert resumed.chunk_updates_skipped == uninterrupted.chunk_updates_skipped

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_faulted_kill_resume_is_bit_exact(self, tmp_path_factory, seed: int) -> None:
        """Faults before AND after the kill still recover to the exact state."""
        circuit = get_circuit("qaoa", 7)
        plan = FaultPlan(seed=seed, transfer_rate=0.05)
        path = tmp_path_factory.mktemp("ckpt") / "run.qgck"
        clean = QGpuSimulator(fusion="off").run(circuit)
        # A generous retry budget keeps exhaustion probability negligible
        # across arbitrary hypothesis-chosen seeds.
        sim = QGpuSimulator(
            fault_plan=plan,
            reliability_policy=RecoveryPolicy(max_transfer_attempts=6),
        )
        sim.run(circuit, checkpoint_every=4, checkpoint_path=path,
                stop_after=len(circuit) // 2)
        if not path.exists():
            return
        resumed = sim.run(circuit, resume_from=path)
        np.testing.assert_array_equal(_bits(clean), _bits(resumed))

    def test_resume_rejects_wrong_circuit(self, tmp_path) -> None:
        path = tmp_path / "run.qgck"
        sim = QGpuSimulator()
        sim.run(get_circuit("qft", 7), checkpoint_every=3, checkpoint_path=path,
                stop_after=6)
        with pytest.raises(CheckpointError, match="circuit"):
            sim.run(get_circuit("bv", 7), resume_from=path)

    def test_resume_rejects_wrong_width(self, tmp_path) -> None:
        path = tmp_path / "run.qgck"
        sim = QGpuSimulator()
        sim.run(get_circuit("qft", 7), checkpoint_every=3, checkpoint_path=path,
                stop_after=6)
        with pytest.raises(CheckpointError, match="width"):
            sim.run(get_circuit("qft", 8), resume_from=path)

    def test_checkpoint_every_requires_path(self) -> None:
        with pytest.raises(SimulationError, match="checkpoint_path"):
            QGpuSimulator().run(get_circuit("bv", 6), checkpoint_every=2)


class TestChunkBitsValidation:
    @pytest.mark.parametrize("bad", [0, -1, -10])
    def test_nonpositive_chunk_bits_rejected(self, bad: int) -> None:
        with pytest.raises(SimulationError, match="chunk_bits"):
            QGpuSimulator(chunk_bits=bad)

    def test_valid_chunk_bits_still_accepted(self) -> None:
        result = QGpuSimulator(chunk_bits=3).run(get_circuit("bv", 6))
        assert result.state.chunk_bits == 3
