"""Tests for the checkpoint container (format v2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.library import get_circuit
from repro.errors import CheckpointError
from repro.reliability import load_checkpoint, save_checkpoint
from repro.statevector.chunks import ChunkedStateVector
from repro.statevector.state import simulate


@pytest.fixture
def state() -> ChunkedStateVector:
    dense = simulate(get_circuit("qaoa", 8))
    return ChunkedStateVector.from_dense(dense.amplitudes, chunk_bits=5)


class TestRoundTrip:
    def test_metadata_and_state_round_trip(self, tmp_path, state) -> None:
        path = tmp_path / "run.qgck"
        written = save_checkpoint(
            path, state, gate_cursor=17, involvement_mask=0b1011,
            circuit_name="qaoa_8", version_name="Q-GPU",
        )
        assert path.stat().st_size == written
        checkpoint = load_checkpoint(path)
        assert checkpoint.gate_cursor == 17
        assert checkpoint.involvement_mask == 0b1011
        assert checkpoint.circuit_name == "qaoa_8"
        assert checkpoint.version_name == "Q-GPU"
        assert checkpoint.chunk_bits == 5
        np.testing.assert_array_equal(
            checkpoint.state.to_dense().view(np.uint64),
            state.to_dense().view(np.uint64),
        )

    def test_write_is_atomic(self, tmp_path, state) -> None:
        path = tmp_path / "run.qgck"
        save_checkpoint(path, state, gate_cursor=1)
        save_checkpoint(path, state, gate_cursor=2)  # atomically replaced
        assert load_checkpoint(path).gate_cursor == 2
        assert not (tmp_path / "run.qgck.tmp").exists()


class TestErrors:
    def test_missing_file(self, tmp_path) -> None:
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.qgck")

    def test_bad_magic(self, tmp_path, state) -> None:
        path = tmp_path / "run.qgck"
        save_checkpoint(path, state, gate_cursor=1)
        data = bytearray(path.read_bytes())
        data[0] = ord("X")
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(path)

    def test_metadata_corruption_detected(self, tmp_path, state) -> None:
        path = tmp_path / "run.qgck"
        save_checkpoint(path, state, gate_cursor=9)
        data = bytearray(path.read_bytes())
        data[12] ^= 0xFF  # inside the fixed metadata block
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_truncated_state_detected(self, tmp_path, state) -> None:
        path = tmp_path / "run.qgck"
        save_checkpoint(path, state, gate_cursor=9)
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(CheckpointError, match="bad checkpoint state"):
            load_checkpoint(path)

    def test_state_payload_corruption_detected(self, tmp_path, state) -> None:
        path = tmp_path / "run.qgck"
        save_checkpoint(path, state, gate_cursor=9)
        data = bytearray(path.read_bytes())
        data[-5] ^= 0x01  # inside the GFC payload, guarded by QGSV v2 CRC
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="bad checkpoint state"):
            load_checkpoint(path)
