"""Tests for seeded deterministic fault plans."""

from __future__ import annotations

import pytest

from repro.errors import FaultInjectionError
from repro.reliability import FaultEvent, FaultKind, FaultPlan


class TestDeterminism:
    def test_same_seed_same_faults(self) -> None:
        plans = [FaultPlan(seed=11, transfer_rate=0.1, codec_rate=0.05) for _ in range(2)]
        events = []
        for plan in plans:
            events.append([
                (plan.transfer_fault(g, t, a), plan.codec_fault(g, t, a))
                for g in range(50) for t in range(4) for a in range(3)
            ])
        assert events[0] == events[1]

    def test_query_order_does_not_matter(self) -> None:
        plan = FaultPlan(seed=5, transfer_rate=0.2)
        forward = [plan.transfer_fault(g, 0, 0) for g in range(100)]
        backward = [plan.transfer_fault(g, 0, 0) for g in reversed(range(100))]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self) -> None:
        a = FaultPlan(seed=1, transfer_rate=0.3)
        b = FaultPlan(seed=2, transfer_rate=0.3)
        faults_a = [a.transfer_fault(g, 0, 0) is not None for g in range(200)]
        faults_b = [b.transfer_fault(g, 0, 0) is not None for g in range(200)]
        assert faults_a != faults_b

    def test_link_degradation_replays(self) -> None:
        plan = FaultPlan(seed=9, degrade_rate=0.5)
        first = [plan.link_degradation(g) for g in range(50)]
        second = [plan.link_degradation(g) for g in range(50)]
        assert first == second
        assert any(f > 1.0 for f in first)
        assert all(f >= 1.0 for f in first)


class TestRates:
    def test_zero_rates_inject_nothing(self) -> None:
        plan = FaultPlan(seed=3)
        assert not plan.active
        assert all(
            plan.transfer_fault(g, t, 0) is None
            for g in range(100) for t in range(4)
        )
        assert all(plan.link_degradation(g) == 1.0 for g in range(100))
        assert not plan.oom_fault(0)

    def test_rate_roughly_respected(self) -> None:
        plan = FaultPlan(seed=17, transfer_rate=0.25)
        hits = sum(
            plan.transfer_fault(g, t, 0) is not None
            for g in range(100) for t in range(10)
        )
        assert 150 < hits < 350  # 250 expected over 1000 draws

    def test_transfer_kinds_cover_taxonomy(self) -> None:
        plan = FaultPlan(seed=23, transfer_rate=1.0)
        kinds = {
            plan.transfer_fault(g, 0, 0).kind for g in range(200)
        }
        assert kinds == {FaultKind.BIT_FLIP, FaultKind.TRUNCATION, FaultKind.DROP}

    def test_invalid_rate_rejected(self) -> None:
        with pytest.raises(FaultInjectionError, match="transfer_rate"):
            FaultPlan(seed=0, transfer_rate=1.5)
        with pytest.raises(FaultInjectionError, match="oom"):
            FaultPlan(seed=0, oom_failures=-1)


class TestOom:
    def test_leading_allocations_fail(self) -> None:
        plan = FaultPlan(seed=0, oom_failures=2)
        assert plan.oom_fault(0) and plan.oom_fault(1)
        assert not plan.oom_fault(2)


class TestForced:
    def test_forced_event_fires_at_position(self) -> None:
        event = FaultEvent(FaultKind.BIT_FLIP, gate_index=3, transfer_index=1, attempt=0)
        plan = FaultPlan(seed=0, forced=(event,))
        assert plan.active
        assert plan.transfer_fault(3, 1, 0) is event
        assert plan.transfer_fault(3, 1, 1) is None
        assert plan.transfer_fault(3, 0, 0) is None
        assert plan.transfer_fault(2, 1, 0) is None


class TestSpec:
    def test_spec_round_trip(self) -> None:
        plan = FaultPlan.from_spec("seed=7,transfer=0.05,codec=0.02,degrade=0.1,oom=1")
        assert plan == FaultPlan.from_spec(plan.to_spec())
        assert plan.seed == 7
        assert plan.transfer_rate == 0.05
        assert plan.oom_failures == 1

    def test_bad_spec_rejected(self) -> None:
        with pytest.raises(FaultInjectionError, match="clause"):
            FaultPlan.from_spec("bogus=1")
        with pytest.raises(FaultInjectionError, match="value"):
            FaultPlan.from_spec("transfer=lots")

    def test_describe_mentions_rates(self) -> None:
        assert "transfer faults" in FaultPlan(seed=1, transfer_rate=0.1).describe()
        assert "no faults" in FaultPlan(seed=1).describe()


class TestServiceLayerKinds:
    def test_service_queries_are_deterministic(self) -> None:
        a = FaultPlan(seed=4, worker_crash_rate=0.3, worker_stall_rate=0.3,
                      journal_torn_rate=0.3, cache_corrupt_rate=0.3)
        b = FaultPlan(seed=4, worker_crash_rate=0.3, worker_stall_rate=0.3,
                      journal_torn_rate=0.3, cache_corrupt_rate=0.3)
        for i in range(50):
            assert a.worker_crash(i, 1) == b.worker_crash(i, 1)
            assert a.worker_stall(i, 1) == b.worker_stall(i, 1)
            assert a.journal_torn_write(i) == b.journal_torn_write(i)
            assert a.cache_corrupt(i) == b.cache_corrupt(i)

    def test_kinds_draw_independent_streams(self) -> None:
        # Same rate, same indices: crash and stall must not mirror each
        # other (they hash with distinct salts).
        plan = FaultPlan(seed=2, worker_crash_rate=0.5, worker_stall_rate=0.5)
        crash = [plan.worker_crash(i, 0) for i in range(64)]
        stall = [plan.worker_stall(i, 0) for i in range(64)]
        assert crash != stall

    def test_zero_rates_inject_no_service_faults(self) -> None:
        plan = FaultPlan(seed=3)
        assert not any(plan.worker_crash(i, a)
                       for i in range(20) for a in range(3))
        assert not any(plan.journal_torn_write(i) for i in range(20))
        assert not any(plan.cache_corrupt(i) for i in range(20))

    def test_forced_service_events_fire(self) -> None:
        plan = FaultPlan(forced=(
            FaultEvent(FaultKind.WORKER_CRASH, gate_index=3, attempt=1),
            FaultEvent(FaultKind.CACHE_CORRUPT, gate_index=0),
        ))
        assert plan.worker_crash(3, 1)
        assert not plan.worker_crash(3, 2)
        assert plan.cache_corrupt(0)
        assert not plan.cache_corrupt(1)

    def test_spec_round_trip_covers_service_rates(self) -> None:
        plan = FaultPlan.from_spec(
            "seed=9,crash=0.1,stall=0.2,torn=0.3,cachecorrupt=0.4"
        )
        assert plan.worker_crash_rate == 0.1
        assert plan.worker_stall_rate == 0.2
        assert plan.journal_torn_rate == 0.3
        assert plan.cache_corrupt_rate == 0.4
        again = FaultPlan.from_spec(plan.to_spec())
        assert again == plan
