"""Tests for fault charging in the timed (DES) model."""

from __future__ import annotations

import pytest

from repro.circuits.library import get_circuit
from repro.core.simulator import QGpuSimulator
from repro.core.versions import OVERLAP, QGPU
from repro.errors import FaultInjectionError, IntegrityError
from repro.reliability import FaultPlan, RecoveryPolicy


@pytest.fixture(scope="module")
def circuit():
    return get_circuit("qft", 30)  # out of core on the P100: everything streams


class TestRetryOverhead:
    def test_faulty_makespan_strictly_larger_and_itemized(self, circuit) -> None:
        clean = QGpuSimulator().estimate(circuit)
        plan = FaultPlan(seed=3, transfer_rate=0.02)
        faulty = QGpuSimulator(fault_plan=plan).estimate(circuit)
        assert faulty.faults_injected > 0
        assert faulty.total_seconds > clean.total_seconds
        assert faulty.retry_seconds > 0
        # Transfer faults only: the overhead is exactly the itemized retry
        # time (no degradation, no link slowdown in this plan).
        assert faulty.total_seconds - faulty.retry_seconds == pytest.approx(
            clean.total_seconds, rel=1e-9
        )

    def test_retry_time_appears_in_breakdown_and_csv(self, circuit) -> None:
        plan = FaultPlan(seed=3, transfer_rate=0.02)
        faulty = QGpuSimulator(fault_plan=plan).estimate(circuit)
        assert faulty.breakdown()["retry"] > 0
        assert "retry_seconds" in faulty.to_csv().splitlines()[0]

    def test_fault_free_plan_changes_nothing(self, circuit) -> None:
        clean = QGpuSimulator().estimate(circuit)
        with_empty_plan = QGpuSimulator(fault_plan=FaultPlan(seed=3)).estimate(circuit)
        assert with_empty_plan.total_seconds == clean.total_seconds
        assert with_empty_plan.retry_seconds == 0.0
        assert with_empty_plan.faults_injected == 0

    def test_same_seed_same_timeline(self, circuit) -> None:
        plan = FaultPlan(seed=8, transfer_rate=0.03, degrade_rate=0.05)
        first = QGpuSimulator(fault_plan=plan).estimate(circuit)
        second = QGpuSimulator(fault_plan=plan).estimate(circuit)
        assert first.total_seconds == second.total_seconds
        assert first.faults_injected == second.faults_injected

    def test_backoff_grows_overhead(self, circuit) -> None:
        plan = FaultPlan(seed=3, transfer_rate=0.02)
        cheap = QGpuSimulator(
            fault_plan=plan,
            reliability_policy=RecoveryPolicy(backoff_base=1e-4),
        ).estimate(circuit)
        costly = QGpuSimulator(
            fault_plan=plan,
            reliability_policy=RecoveryPolicy(backoff_base=1.0),
        ).estimate(circuit)
        assert costly.retry_seconds > cheap.retry_seconds


class TestLinkDegradation:
    def test_degradation_stretches_transfers_without_retries(self, circuit) -> None:
        clean = QGpuSimulator(version=OVERLAP).estimate(circuit)
        plan = FaultPlan(seed=4, degrade_rate=0.2)
        degraded = QGpuSimulator(version=OVERLAP, fault_plan=plan).estimate(circuit)
        assert degraded.faults_injected > 0
        assert degraded.total_seconds > clean.total_seconds
        assert degraded.retry_seconds == 0.0  # delays, never corruption


class TestCodecDegradation:
    def test_repeated_codec_faults_disable_compression(self, circuit) -> None:
        plan = FaultPlan(seed=6, codec_rate=0.1)
        policy = RecoveryPolicy(codec_fault_limit=3)
        result = QGpuSimulator(
            version=QGPU, fault_plan=plan, reliability_policy=policy
        ).estimate(circuit)
        assert result.compression_disabled_at is not None
        after = [
            g for g in result.per_gate
            if g.index > result.compression_disabled_at and g.bytes_h2d > 0
        ]
        assert after and all(g.codec_seconds == 0.0 for g in after)


class TestStrictPolicy:
    def test_raise_policy_propagates(self, circuit) -> None:
        plan = FaultPlan(seed=3, transfer_rate=0.05)
        with pytest.raises(IntegrityError):
            QGpuSimulator(
                fault_plan=plan,
                reliability_policy=RecoveryPolicy(on_fault="raise"),
            ).estimate(circuit)

    def test_exhausted_budget_raises(self, circuit) -> None:
        plan = FaultPlan(seed=3, transfer_rate=1.0)
        with pytest.raises(FaultInjectionError, match="attempts"):
            QGpuSimulator(
                fault_plan=plan,
                reliability_policy=RecoveryPolicy(max_transfer_attempts=2),
            ).estimate(circuit)
