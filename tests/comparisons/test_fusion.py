"""Tests for the gate-fusion pass."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import FAMILIES, get_circuit
from repro.circuits.fusion import apply_fused, fuse, fusion_factor
from repro.errors import SimulationError
from repro.statevector.state import StateVector, simulate


class TestFusionStructure:
    def test_blocks_reproduce_circuit(self) -> None:
        circuit = get_circuit("qft", 8)
        blocks = fuse(circuit)
        flattened = [gate for block in blocks for gate in block.gates]
        assert flattened == list(circuit.gates)

    def test_block_width_bounded(self) -> None:
        for family in FAMILIES:
            circuit = get_circuit(family, 10)
            for block in fuse(circuit, max_fused_qubits=4):
                assert 1 <= block.width <= 4
                assert block.qubits == tuple(sorted(block.qubits))

    def test_chain_on_one_qubit_fully_fuses(self) -> None:
        circuit = QuantumCircuit(1)
        for _ in range(10):
            circuit.h(0)
        blocks = fuse(circuit)
        assert len(blocks) == 1
        assert len(blocks[0].gates) == 10

    def test_disjoint_gates_do_not_fuse(self) -> None:
        circuit = QuantumCircuit(4).h(0).h(1).h(2).h(3)
        blocks = fuse(circuit, max_fused_qubits=4)
        assert len(blocks) == 4

    def test_overlapping_two_qubit_gates_fuse(self) -> None:
        circuit = QuantumCircuit(3).cx(0, 1).cx(1, 2).cx(0, 1)
        blocks = fuse(circuit, max_fused_qubits=3)
        assert len(blocks) == 1
        assert blocks[0].qubits == (0, 1, 2)

    def test_width_limit_splits_blocks(self) -> None:
        circuit = QuantumCircuit(3).cx(0, 1).cx(1, 2)
        blocks = fuse(circuit, max_fused_qubits=2)
        assert len(blocks) == 2

    def test_invalid_limit_rejected(self) -> None:
        with pytest.raises(SimulationError):
            fuse(QuantumCircuit(1).h(0), max_fused_qubits=0)


class TestFusedSemantics:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_fused_application_matches_dense(self, family: str) -> None:
        circuit = get_circuit(family, 8)
        state = StateVector(8)
        apply_fused(state.amplitudes, circuit, max_fused_qubits=4)
        np.testing.assert_allclose(
            state.amplitudes, simulate(circuit).amplitudes, atol=1e-9
        )

    def test_block_matrix_is_unitary(self) -> None:
        circuit = get_circuit("qft", 6)
        for block in fuse(circuit, 3):
            matrix = block.matrix()
            np.testing.assert_allclose(
                matrix @ matrix.conj().T,
                np.eye(matrix.shape[0]),
                atol=1e-10,
            )

    def test_block_matrix_composition_order(self) -> None:
        # t after h on one qubit: fused matrix must be T @ H, not H @ T.
        circuit = QuantumCircuit(1).h(0).t(0)
        block = fuse(circuit, 1)[0]
        from repro.circuits.gates import Gate

        expected = Gate("t", (0,)).matrix() @ Gate("h", (0,)).matrix()
        np.testing.assert_allclose(block.matrix(), expected, atol=1e-12)

    @given(seed=st.integers(0, 40))
    def test_random_circuits_fused_exactly(self, seed: int) -> None:
        rng = np.random.default_rng(seed)
        circuit = QuantumCircuit(5)
        for _ in range(25):
            if rng.random() < 0.4:
                a, b = rng.choice(5, size=2, replace=False)
                circuit.cx(int(a), int(b))
            else:
                circuit.add(
                    ["h", "t", "sx"][rng.integers(3)], int(rng.integers(5))
                )
        state = StateVector(5)
        apply_fused(state.amplitudes, circuit, max_fused_qubits=3)
        np.testing.assert_allclose(
            state.amplitudes, simulate(circuit).amplitudes, atol=1e-10
        )


class TestFusionFactor:
    def test_at_least_one(self) -> None:
        for family in FAMILIES:
            assert fusion_factor(get_circuit(family, 10)) >= 1.0

    def test_single_qubit_chain_factor(self) -> None:
        circuit = QuantumCircuit(1)
        for _ in range(8):
            circuit.t(0)
        assert fusion_factor(circuit) == 8.0

    @given(seed=st.integers(0, 100))
    def test_factor_at_least_one_for_every_limit(self, seed: int) -> None:
        # Greedy fusion is *not* strictly monotone in the width limit (a
        # wider block can greedily absorb a gate that would have seeded a
        # better split), so only the lower bound is a true invariant.
        rng = np.random.default_rng(seed)
        circuit = QuantumCircuit(5)
        for _ in range(30):
            if rng.random() < 0.5:
                a, b = rng.choice(5, size=2, replace=False)
                circuit.cx(int(a), int(b))
            else:
                circuit.h(int(rng.integers(5)))
        for k in (1, 2, 3, 4):
            assert fusion_factor(circuit, k) >= 1.0
        # Every block's gates survive in order under every limit.
        for k in (2, 4):
            flattened = [g for block in fuse(circuit, k) for g in block.gates]
            assert flattened == list(circuit.gates)
