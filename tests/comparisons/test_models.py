"""Tests for the comparator simulator cost models."""

from __future__ import annotations

import pytest

from repro.circuits.library import get_circuit
from repro.comparisons.models import (
    QDK_SUPPORTED_FAMILIES,
    QSIM_SUPPORTED_FAMILIES,
    estimate_cpu_openmp,
    estimate_qdk,
    estimate_qsim_cirq,
)
from repro.core.simulator import QGpuSimulator
from repro.core.versions import BASELINE, QGPU
from repro.errors import SimulationError
from repro.hardware.specs import V100_MACHINE


@pytest.fixture(scope="module")
def gs30():
    return get_circuit("gs", 30)


class TestOrdering:
    def test_qsim_faster_than_openmp(self, gs30) -> None:
        # Fusion + AVX make Qsim the fastest CPU simulator.
        assert (
            estimate_qsim_cirq(gs30).total_seconds
            < estimate_cpu_openmp(gs30).total_seconds
        )

    def test_qdk_much_slower_than_openmp(self, gs30) -> None:
        qdk = estimate_qdk(gs30).total_seconds
        openmp = estimate_cpu_openmp(gs30).total_seconds
        assert qdk > 5 * openmp

    def test_qgpu_beats_every_cpu_simulator_at_scale(self) -> None:
        circuit = get_circuit("gs", 32)
        qgpu = QGpuSimulator(version=QGPU).estimate(circuit).total_seconds
        assert qgpu < estimate_qsim_cirq(circuit).total_seconds
        assert qgpu < estimate_qdk(circuit).total_seconds

    def test_cpu_openmp_beats_hybrid_baseline_at_scale(self) -> None:
        # Paper Section III-C: past 32 qubits, the pure CPU path wins over
        # the static hybrid baseline.
        circuit = get_circuit("qft", 33)
        baseline = QGpuSimulator(version=BASELINE).estimate(circuit).total_seconds
        openmp = estimate_cpu_openmp(circuit).total_seconds
        assert openmp < baseline


class TestScaling:
    def test_time_scales_exponentially_with_width(self) -> None:
        small = estimate_cpu_openmp(get_circuit("gs", 28)).total_seconds
        large = estimate_cpu_openmp(get_circuit("gs", 30)).total_seconds
        # Same family: gate count grows linearly, state 4x => ~4x+ per gate.
        assert large > 3.5 * small

    def test_cpu_time_linear_in_gates(self) -> None:
        circuit = get_circuit("gs", 28)
        result = estimate_cpu_openmp(circuit)
        assert len(result.per_gate) == len(circuit)
        per_gate = {g.seconds for g in result.per_gate}
        assert len(per_gate) == 1  # every full-state pass costs the same

    def test_host_memory_limit_enforced(self) -> None:
        circuit = get_circuit("gs", 33)
        with pytest.raises(SimulationError):
            estimate_cpu_openmp(circuit, machine=V100_MACHINE)


class TestSupportLists:
    def test_paper_section_5c_support(self) -> None:
        assert set(QSIM_SUPPORTED_FAMILIES) == {"gs", "hlf"}
        assert set(QDK_SUPPORTED_FAMILIES) == {"qft", "iqp", "hlf", "gs"}

    def test_version_labels(self, gs30) -> None:
        assert estimate_cpu_openmp(gs30).version == "CPU-OpenMP"
        assert estimate_qsim_cirq(gs30).version == "Qsim-Cirq"
        assert estimate_qdk(gs30).version == "QDK"
