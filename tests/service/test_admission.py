"""Admission-control tests: the byte budget is a hard aggregate bound."""

from __future__ import annotations

import pytest

from repro.errors import AdmissionError, ServiceError
from repro.service.admission import AdmissionController


class TestAdmit:
    def test_admits_within_budget(self) -> None:
        gate = AdmissionController(budget_bytes=100.0)
        assert gate.try_admit("a", 60.0)
        assert gate.in_use_bytes == 60.0
        assert gate.available_bytes == 40.0

    def test_defers_when_overcommitted(self) -> None:
        gate = AdmissionController(budget_bytes=100.0)
        assert gate.try_admit("a", 60.0)
        assert not gate.try_admit("b", 60.0)
        assert gate.deferrals == 1
        assert gate.in_use_bytes == 60.0

    def test_release_frees_budget(self) -> None:
        gate = AdmissionController(budget_bytes=100.0)
        gate.try_admit("a", 60.0)
        gate.release("a")
        assert gate.try_admit("b", 90.0)

    def test_never_fitting_job_rejected(self) -> None:
        gate = AdmissionController(budget_bytes=100.0)
        with pytest.raises(AdmissionError, match="can never be admitted"):
            gate.try_admit("a", 101.0)
        assert gate.rejections == 1

    def test_peak_tracks_high_water_mark(self) -> None:
        gate = AdmissionController(budget_bytes=100.0)
        gate.try_admit("a", 40.0)
        gate.try_admit("b", 50.0)
        gate.release("a")
        gate.try_admit("c", 10.0)
        assert gate.peak_bytes == 90.0
        assert gate.in_use_bytes == 60.0

    def test_double_admit_rejected(self) -> None:
        gate = AdmissionController(budget_bytes=100.0)
        gate.try_admit("a", 10.0)
        with pytest.raises(ServiceError, match="already admitted"):
            gate.try_admit("a", 10.0)

    def test_release_without_reservation(self) -> None:
        with pytest.raises(ServiceError, match="no admission reservation"):
            AdmissionController(budget_bytes=10.0).release("ghost")

    def test_budget_must_be_positive(self) -> None:
        with pytest.raises(ServiceError):
            AdmissionController(budget_bytes=0.0)

    def test_snapshot(self) -> None:
        gate = AdmissionController(budget_bytes=100.0)
        gate.try_admit("a", 30.0)
        snap = gate.snapshot()
        assert snap["in_use_bytes"] == 30.0
        assert snap["peak_bytes"] == 30.0
        assert snap["budget_bytes"] == 100.0
