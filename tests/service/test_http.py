"""HTTP observability endpoint: /metrics, /healthz, /jobs."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import LogicalClock, Tracer
from repro.service import BatchService, JobSpec, ServiceHTTPServer


def _get(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=10) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


@pytest.fixture()
def served():
    tracer = Tracer(clock=LogicalClock())
    service = BatchService(workers=1, tracer=tracer)
    service.submit(JobSpec(family="bv", qubits=6, shots=4))
    service.submit(JobSpec(family="gs", qubits=6))
    service.run_until_complete()
    server = ServiceHTTPServer(service, port=0).start()
    try:
        yield service, server
    finally:
        server.stop()


class TestRoutes:
    def test_healthz(self, served):
        _, server = served
        status, content_type, body = _get(f"{server.url}/healthz")
        assert status == 200
        assert "application/json" in content_type
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["jobs"] == {"SUCCEEDED": 2}
        assert payload["workers"] == 1

    def test_metrics_prometheus_text(self, served):
        _, server = served
        status, content_type, body = _get(f"{server.url}/metrics")
        assert status == 200
        assert "version=0.0.4" in content_type
        assert "# TYPE repro_jobs_submitted counter" in body
        assert "repro_jobs_submitted 2" in body
        # Histogram exposition: buckets, +Inf, sum and count.
        assert "repro_job_latency_seconds_bucket{le=" in body
        assert 'le="+Inf"' in body
        assert "repro_job_latency_seconds_count 2" in body
        # Traced service: per-stage span-duration series with labels.
        assert 'repro_span_seconds_bucket{stage="compute",le=' in body
        # Gauges carry live state.
        assert "repro_up 1" in body
        assert "repro_jobs_SUCCEEDED 2" in body

    def test_jobs_table(self, served):
        _, server = served
        status, _, body = _get(f"{server.url}/jobs")
        assert status == 200
        payload = json.loads(body)
        assert [job["id"] for job in payload["jobs"]] == ["j0001", "j0002"]
        assert all(job["state"] == "SUCCEEDED" for job in payload["jobs"])

    def test_unknown_route_404s(self, served):
        _, server = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{server.url}/nope")
        assert excinfo.value.code == 404
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert "/metrics" in payload["routes"]


class TestLifecycle:
    def test_ephemeral_port_and_url(self, served):
        _, server = served
        assert server.port > 0
        assert server.url.startswith("http://127.0.0.1:")

    def test_double_start_rejected(self, served):
        from repro.errors import ServiceError

        _, server = served
        with pytest.raises(ServiceError):
            server.start()

    def test_serves_while_queue_is_live(self):
        # The endpoint can come up before any job runs - gauges show the
        # pending queue.
        service = BatchService(workers=1)
        service.submit(JobSpec(family="bv", qubits=5))
        server = ServiceHTTPServer(service, port=0).start()
        try:
            _, _, body = _get(f"{server.url}/healthz")
            assert json.loads(body)["jobs"] == {"PENDING": 1}
            service.run_until_complete()
            _, _, body = _get(f"{server.url}/healthz")
            assert json.loads(body)["jobs"] == {"SUCCEEDED": 1}
        finally:
            server.stop()


class TestProbes:
    def test_livez_always_ok(self, served):
        _, server = served
        status, _, body = _get(f"{server.url}/livez")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0

    def test_readyz_ready_when_healthy(self, served):
        _, server = served
        status, _, body = _get(f"{server.url}/readyz")
        assert status == 200
        payload = json.loads(body)
        assert payload["ready"] is True
        assert payload["reasons"] == []
        assert payload["supervision"]["enabled"] is True

    def test_readyz_503_when_watchdog_dead_with_running_jobs(self):
        from repro.service import JobState

        service = BatchService(workers=1)  # supervision on, never started
        job = service.submit(JobSpec(family="bv", qubits=5))
        job.transition(JobState.ADMITTED, at=1.0)
        job.transition(JobState.RUNNING, at=2.0)
        server = ServiceHTTPServer(service, port=0).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{server.url}/readyz")
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read().decode("utf-8"))
            assert payload["ready"] is False
            assert any("watchdog" in reason for reason in payload["reasons"])
            # Liveness is unaffected: the process still serves.
            status, _, _ = _get(f"{server.url}/livez")
            assert status == 200
        finally:
            server.stop()

    def test_readyz_reports_open_breakers_without_failing(self):
        from repro.service import BreakerConfig

        service = BatchService(
            workers=1, breaker=BreakerConfig(failure_threshold=1)
        )
        service.breakers.record_failure("ab" * 32)
        server = ServiceHTTPServer(service, port=0).start()
        try:
            status, _, body = _get(f"{server.url}/readyz")
            assert status == 200  # degraded, not down
            payload = json.loads(body)
            assert payload["ready"] is True
            assert any("breaker" in reason for reason in payload["reasons"])
            _, _, metrics = _get(f"{server.url}/metrics")
            assert "repro_breakers_open 1" in metrics
        finally:
            server.stop()


class TestStopPromptness:
    def test_stop_returns_despite_idle_open_connection(self):
        # A client that connects and never sends a request used to pin a
        # handler thread and hang stop(); the bounded join and per-request
        # socket timeout make shutdown prompt.
        import socket
        import time

        service = BatchService(workers=1)
        server = ServiceHTTPServer(service, port=0).start()
        sock = socket.create_connection((server.host, server.port), timeout=10)
        try:
            start = time.monotonic()
            server.stop()
            assert time.monotonic() - start < 5.0
        finally:
            sock.close()
