"""Job model, lifecycle state machine, and cache-key tests."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service.job import (
    ALLOWED_TRANSITIONS,
    Job,
    JobResult,
    JobSpec,
    JobState,
    cache_key,
)


def make_job(**spec_kwargs) -> Job:
    spec_kwargs.setdefault("family", "bv")
    spec_kwargs.setdefault("qubits", 6)
    return Job(job_id="j0001", seq=1, spec=JobSpec(**spec_kwargs), fingerprint="f" * 64)


class TestStateMachine:
    def test_happy_path(self) -> None:
        job = make_job()
        for state in (JobState.ADMITTED, JobState.RUNNING, JobState.SUCCEEDED):
            job.transition(state, at=1.0)
        assert job.state is JobState.SUCCEEDED
        assert job.state.terminal

    def test_retry_edge_resets_timestamps(self) -> None:
        job = make_job()
        job.transition(JobState.ADMITTED, at=1.0)
        job.transition(JobState.RUNNING, at=2.0)
        job.transition(JobState.FAILED, at=3.0)
        job.transition(JobState.PENDING)
        assert job.state is JobState.PENDING
        assert job.started_at is None and job.finished_at is None

    @pytest.mark.parametrize("target", [
        JobState.RUNNING, JobState.SUCCEEDED, JobState.FAILED,
    ])
    def test_illegal_from_pending(self, target: JobState) -> None:
        with pytest.raises(ServiceError, match="illegal transition"):
            make_job().transition(target)

    def test_terminal_states_are_frozen(self) -> None:
        for terminal in (JobState.SUCCEEDED, JobState.CANCELLED):
            assert not ALLOWED_TRANSITIONS[terminal]

    def test_running_job_can_be_cancelled(self) -> None:
        job = make_job()
        job.transition(JobState.ADMITTED)
        job.transition(JobState.RUNNING)
        job.transition(JobState.CANCELLED, at=5.0)
        assert job.state is JobState.CANCELLED
        assert job.finished_at == 5.0

    def test_admitted_job_can_requeue(self) -> None:
        job = make_job()
        job.transition(JobState.ADMITTED, at=2.0)
        job.transition(JobState.PENDING)
        assert job.state is JobState.PENDING
        assert job.admitted_at is None

    def test_no_cancel_after_terminal(self) -> None:
        job = make_job()
        job.transition(JobState.ADMITTED)
        job.transition(JobState.RUNNING)
        job.transition(JobState.SUCCEEDED)
        with pytest.raises(ServiceError):
            job.transition(JobState.CANCELLED)

    def test_wait_and_run_times(self) -> None:
        job = make_job()
        job.submitted_at = 1.0
        job.transition(JobState.ADMITTED, at=3.0)
        job.transition(JobState.RUNNING, at=4.0)
        job.transition(JobState.SUCCEEDED, at=10.0)
        assert job.wait_time == pytest.approx(3.0)
        assert job.run_time == pytest.approx(6.0)


class TestJobSpec:
    def test_family_and_qasm_mutually_exclusive(self) -> None:
        with pytest.raises(ServiceError):
            JobSpec(family="bv", qubits=6, qasm="OPENQASM 2.0;")
        with pytest.raises(ServiceError):
            JobSpec()

    def test_rejects_bad_numbers(self) -> None:
        with pytest.raises(ServiceError):
            JobSpec(family="bv", qubits=0)
        with pytest.raises(ServiceError):
            JobSpec(family="bv", qubits=4, shots=-1)

    def test_dict_round_trip_is_compact(self) -> None:
        spec = JobSpec(family="qft", qubits=8, shots=100, priority=3)
        data = spec.to_dict()
        assert data == {"family": "qft", "qubits": 8, "shots": 100, "priority": 3}
        assert JobSpec.from_dict(data) == spec

    def test_from_dict_rejects_unknown_fields(self) -> None:
        with pytest.raises(ServiceError, match="unknown job spec fields"):
            JobSpec.from_dict({"family": "bv", "qubits": 4, "wat": 1})

    def test_build_circuit_from_family(self) -> None:
        circuit = JobSpec(family="bv", qubits=6).build_circuit()
        assert circuit.num_qubits == 6

    def test_build_circuit_from_qasm(self) -> None:
        from repro.circuits.library import get_circuit
        from repro.circuits.qasm import to_qasm

        qasm = to_qasm(get_circuit("gs", 5))
        circuit = JobSpec(qasm=qasm, name="mine").build_circuit()
        assert circuit.num_qubits == 5


class TestCacheKey:
    def test_same_inputs_same_key(self) -> None:
        spec = JobSpec(family="bv", qubits=6, shots=10)
        assert cache_key("a" * 64, spec) == cache_key("a" * 64, spec)

    @pytest.mark.parametrize("change", [
        {"version": "Naive"},
        {"shots": 11},
        {"seed": 1},
        {"chunk_bits": 3},
        {"fault_plan": "seed=1,transfer=0.1"},
    ])
    def test_any_knob_changes_key(self, change: dict) -> None:
        base = JobSpec(family="bv", qubits=6, shots=10)
        varied = JobSpec(**{**{"family": "bv", "qubits": 6, "shots": 10}, **change})
        assert cache_key("a" * 64, base) != cache_key("a" * 64, varied)

    def test_fingerprint_changes_key(self) -> None:
        spec = JobSpec(family="bv", qubits=6)
        assert cache_key("a" * 64, spec) != cache_key("b" * 64, spec)

    def test_priority_does_not_change_key(self) -> None:
        # Priority affects scheduling, never the result.
        low = JobSpec(family="bv", qubits=6, priority=0)
        high = JobSpec(family="bv", qubits=6, priority=9)
        assert cache_key("a" * 64, low) == cache_key("a" * 64, high)


class TestJobResult:
    def test_round_trip(self) -> None:
        result = JobResult(
            counts={"3": 7, "0": 2}, state_sha256="s" * 64,
            pruned_fraction=0.25, num_qubits=4,
        )
        again = JobResult.from_dict(result.to_dict())
        assert again.counts == result.counts
        assert again.state_sha256 == result.state_sha256
        assert again.pruned_fraction == result.pruned_fraction
