"""Result-cache tests: content addressing, LRU byte-budget eviction."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service.cache import ResultCache
from repro.service.job import JobResult


def payload(tag: str, qubits: int = 4) -> JobResult:
    return JobResult(counts={"0": 1}, state_sha256=tag * 64, num_qubits=qubits)


def entry_cost(result: JobResult) -> int:
    cache = ResultCache(1 << 20)
    cache.put("probe", result)
    return cache.stored_bytes


class TestHitMiss:
    def test_miss_then_hit(self) -> None:
        cache = ResultCache(1 << 16)
        assert cache.get("k") is None
        cache.put("k", payload("a"))
        hit = cache.get("k")
        assert hit is not None and hit.state_sha256 == "a" * 64
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_get_returns_isolated_copy(self) -> None:
        cache = ResultCache(1 << 16)
        cache.put("k", payload("a"))
        first = cache.get("k")
        first.counts["0"] = 999
        assert cache.get("k").counts["0"] == 1

    def test_peek_and_record_miss_leave_recency_alone(self) -> None:
        cache = ResultCache(1 << 16)
        cache.put("k", payload("a"))
        assert cache.peek("k")
        assert not cache.peek("other")
        cache.record_miss()
        assert cache.hits == 0 and cache.misses == 1


class TestEviction:
    def test_lru_eviction_respects_budget(self) -> None:
        cost = entry_cost(payload("a"))
        cache = ResultCache(2 * cost)
        cache.put("first", payload("a"))
        cache.put("second", payload("b"))
        cache.put("third", payload("c"))  # evicts "first"
        assert cache.evictions == 1
        assert not cache.peek("first")
        assert cache.peek("second") and cache.peek("third")
        assert cache.stored_bytes <= cache.budget_bytes

    def test_hit_refreshes_recency(self) -> None:
        cost = entry_cost(payload("a"))
        cache = ResultCache(2 * cost)
        cache.put("first", payload("a"))
        cache.put("second", payload("b"))
        cache.get("first")  # now "second" is LRU
        cache.put("third", payload("c"))
        assert cache.peek("first") and not cache.peek("second")

    def test_oversized_payload_not_stored(self) -> None:
        big = JobResult(counts={str(i): 1 for i in range(1000)})
        cache = ResultCache(64)
        cache.put("big", big)
        assert len(cache) == 0 and cache.stored_bytes == 0

    def test_overwrite_same_key_reclaims_bytes(self) -> None:
        cache = ResultCache(1 << 16)
        cache.put("k", payload("a"))
        before = cache.stored_bytes
        cache.put("k", payload("b"))
        assert len(cache) == 1
        assert cache.stored_bytes == pytest.approx(before, abs=4)


class TestValidation:
    def test_positive_budget_required(self) -> None:
        with pytest.raises(ServiceError):
            ResultCache(0)

    def test_snapshot_counters(self) -> None:
        cache = ResultCache(1 << 16)
        cache.put("k", payload("a"))
        cache.get("k")
        cache.get("absent")
        snap = cache.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["entries"] == 1
        assert snap["stored_bytes"] > 0
