"""JSONL job-journal tests: round-trip, corruption, crash safety, compaction."""

from __future__ import annotations

import logging

import pytest

from repro.errors import JobNotFound, ServiceError
from repro.service.job import Job, JobResult, JobSpec, JobState
from repro.service.store import JobStore, decode_line, encode_line


def make_job(seq: int = 1, **spec_kwargs) -> Job:
    spec_kwargs.setdefault("family", "bv")
    spec_kwargs.setdefault("qubits", 6)
    return Job(
        job_id=f"j{seq:04d}", seq=seq, spec=JobSpec(**spec_kwargs),
        fingerprint="f" * 64, footprint_bytes=123.0, submitted_at=1,
    )


class TestRoundTrip:
    def test_submit_and_reload(self, tmp_path) -> None:
        store = JobStore(tmp_path / "jobs.jsonl")
        job = make_job(shots=10, priority=2)
        store.record_submit(job)
        loaded = store.load()["j0001"]
        assert loaded.spec == job.spec
        assert loaded.state is JobState.PENDING
        assert loaded.fingerprint == job.fingerprint
        assert loaded.footprint_bytes == 123.0

    def test_transitions_replay_through_state_machine(self, tmp_path) -> None:
        store = JobStore(tmp_path / "jobs.jsonl")
        job = make_job()
        store.record_submit(job)
        for state, at in ((JobState.ADMITTED, 2), (JobState.RUNNING, 3)):
            job.transition(state, at=at)
            store.record_transition(job, at)
        loaded = store.load()["j0001"]
        assert loaded.state is JobState.RUNNING
        assert loaded.started_at == 3

    def test_result_round_trip(self, tmp_path) -> None:
        store = JobStore(tmp_path / "jobs.jsonl")
        job = make_job()
        store.record_submit(job)
        job.result = JobResult(counts={"0": 5}, state_sha256="s" * 64, num_qubits=6)
        job.attempts = 1
        store.record_result(job)
        loaded = store.load()["j0001"]
        assert loaded.result.counts == {"0": 5}
        assert loaded.attempts == 1

    def test_missing_file_is_empty(self, tmp_path) -> None:
        store = JobStore(tmp_path / "absent.jsonl")
        assert store.load() == {}
        assert store.next_seq() == 1


class TestValidation:
    def test_corrupt_line_before_tail_rejected(self, tmp_path) -> None:
        path = tmp_path / "jobs.jsonl"
        path.write_text(
            '{"event": "submit"\n'
            '{"event": "explode", "id": "j0001"}\n'
        )
        with pytest.raises(ServiceError, match="corrupt journal line"):
            JobStore(path).load()

    def test_unknown_event_rejected(self, tmp_path) -> None:
        path = tmp_path / "jobs.jsonl"
        path.write_text('{"event": "explode", "id": "j0001"}\n')
        with pytest.raises(ServiceError, match="unknown journal event"):
            JobStore(path).load()

    def test_orphan_transition_rejected(self, tmp_path) -> None:
        path = tmp_path / "jobs.jsonl"
        path.write_text('{"event": "transition", "id": "ghost", "to": "RUNNING"}\n')
        with pytest.raises(ServiceError, match="unknown job"):
            JobStore(path).load()

    def test_illegal_journalled_transition_rejected(self, tmp_path) -> None:
        store = JobStore(tmp_path / "jobs.jsonl")
        store.record_submit(make_job())
        store.append({"event": "transition", "id": "j0001", "to": "SUCCEEDED"})
        with pytest.raises(ServiceError, match="illegal transition"):
            store.load()

    def test_get_unknown_job(self, tmp_path) -> None:
        store = JobStore(tmp_path / "jobs.jsonl")
        store.record_submit(make_job())
        with pytest.raises(JobNotFound):
            store.get("j9999")
        assert store.get("j0001").job_id == "j0001"


class TestCrcFraming:
    def test_encode_decode_round_trip(self) -> None:
        event = {"event": "error", "id": "j0001", "message": "boom"}
        line = encode_line(event)
        assert line.endswith("\n")
        assert "\tcrc32=" in line
        assert decode_line(line.rstrip("\n")) == event

    def test_crc_mismatch_detected(self) -> None:
        line = encode_line({"event": "error", "id": "j0001", "message": "x"})
        tampered = line.replace('"x"', '"y"').rstrip("\n")
        with pytest.raises(ValueError, match="crc32 mismatch"):
            decode_line(tampered)

    def test_legacy_suffixless_lines_still_parse(self, tmp_path) -> None:
        # Journals written before CRC framing carry bare JSON lines.
        path = tmp_path / "jobs.jsonl"
        job = make_job()
        probe = JobStore(path)
        legacy: list[str] = []
        probe._write_line = legacy.append  # type: ignore[method-assign]
        probe.record_submit(job)
        import json as _json

        path.write_text(
            "".join(_json.dumps(_json.loads(line.split("\t")[0])) + "\n"
                    for line in legacy)
        )
        assert JobStore(path).load()["j0001"].state is JobState.PENDING

    def test_fsync_policy_validated(self, tmp_path) -> None:
        with pytest.raises(ServiceError, match="fsync policy"):
            JobStore(tmp_path / "jobs.jsonl", fsync="sometimes")
        store = JobStore(tmp_path / "jobs.jsonl", fsync="always")
        store.record_submit(make_job())
        assert store.load()["j0001"].state is JobState.PENDING


class TestTornTail:
    def _torn_journal(self, tmp_path):
        store = JobStore(tmp_path / "jobs.jsonl")
        store.record_submit(make_job())
        job = make_job()
        job.transition(JobState.ADMITTED, at=2)
        store.record_transition(job, 2)
        # Tear the final record as a crash mid-append would.
        raw = store.path.read_bytes()
        store.path.write_bytes(raw[: len(raw) - 20])
        return store.path

    def test_torn_tail_tolerated_with_warning(self, tmp_path, caplog) -> None:
        path = self._torn_journal(tmp_path)
        # An earlier configure_logging() (e.g. tests/obs/test_log.py) leaves
        # the repro logger with propagate=False and a stale stderr handler,
        # which would starve caplog; restore propagation for this check.
        root = logging.getLogger("repro")
        previous_propagate, previous_handlers = root.propagate, list(root.handlers)
        root.propagate = True
        root.handlers.clear()
        try:
            with caplog.at_level("WARNING", logger="repro.service.store"):
                jobs = JobStore(path).load()
        finally:
            root.propagate = previous_propagate
            root.handlers[:] = previous_handlers
        assert jobs["j0001"].state is JobState.PENDING  # tail dropped
        assert any("torn journal tail" in r.message for r in caplog.records)

    def test_repair_tail_truncates_in_place(self, tmp_path) -> None:
        path = self._torn_journal(tmp_path)
        store = JobStore(path)
        assert store.repair_tail() > 0
        assert store.repair_tail() == 0  # idempotent
        assert path.read_bytes().endswith(b"\n")
        assert len(list(store.iter_events())) == 1

    def test_append_after_tear_lands_on_a_clean_boundary(self, tmp_path) -> None:
        path = self._torn_journal(tmp_path)
        store = JobStore(path)
        store.record_error(make_job(), "after the crash")
        events = list(JobStore(path).iter_events())
        assert [e["event"] for e in events] == ["submit", "error"]

    def test_unterminated_but_intact_tail_is_closed(self, tmp_path) -> None:
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        store.record_submit(make_job())
        raw = path.read_bytes()
        path.write_bytes(raw.rstrip(b"\n"))  # intact record, no newline
        fresh = JobStore(path)
        assert fresh.repair_tail() == 0
        assert path.read_bytes().endswith(b"\n")


class TestCompaction:
    def _assert_replay_equal(self, path) -> None:
        before = JobStore(path).load()
        kept = JobStore(path).compact()
        after = JobStore(path).load()
        assert list(after) == list(before)
        assert kept > 0
        for job_id, original in before.items():
            compacted = after[job_id]
            assert compacted.state is original.state
            assert compacted.attempts == original.attempts
            assert compacted.spec == original.spec
            assert compacted.error == original.error
            assert compacted.admitted_at == original.admitted_at
            assert compacted.started_at == original.started_at
            assert compacted.finished_at == original.finished_at
            assert (compacted.result is None) == (original.result is None)
            if original.result is not None:
                assert compacted.result.to_dict() == original.result.to_dict()

    def test_compaction_preserves_replay_state(self, tmp_path) -> None:
        from repro.service import BatchService

        path = tmp_path / "jobs.jsonl"
        service = BatchService(workers=1, journal=path)
        service.submit(JobSpec(family="bv", qubits=6, shots=8))
        service.submit(JobSpec(family="bv", qubits=6, shots=8))  # cache hit
        service.submit(JobSpec(family="gs", qubits=5))
        service.run_until_complete()
        self._assert_replay_equal(path)

    def test_compaction_shrinks_a_retry_heavy_journal(self, tmp_path) -> None:
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        job = make_job()
        store.record_submit(job)
        for attempt in range(1, 5):  # four failed attempts, three re-queues
            job.attempts = attempt
            for state, at in (
                (JobState.ADMITTED, attempt),
                (JobState.RUNNING, attempt),
                (JobState.FAILED, attempt),
            ):
                job.transition(state, at=at)
                store.record_transition(job, at)
            store.record_error(job, f"attempt {attempt} failed")
            if attempt < 4:
                job.transition(JobState.PENDING)
                store.record_transition(job, None)
        before_bytes = path.stat().st_size
        before = store.load()["j0001"]
        store.compact()
        after = JobStore(path).load()["j0001"]
        assert path.stat().st_size < before_bytes
        assert after.state is JobState.FAILED
        assert after.attempts == before.attempts == 4
        assert after.error == "attempt 4 failed"

    def test_compacting_mixed_states(self, tmp_path) -> None:
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        pending = make_job(seq=1)
        store.record_submit(pending)
        cancelled = make_job(seq=2)
        store.record_submit(cancelled)
        cancelled.transition(JobState.CANCELLED, at=5)
        store.record_transition(cancelled, 5)
        running = make_job(seq=3)
        store.record_submit(running)
        running.attempts = 1
        for state, at in ((JobState.ADMITTED, 6), (JobState.RUNNING, 7)):
            running.transition(state, at=at)
            store.record_transition(running, at)
        succeeded = make_job(seq=4)
        store.record_submit(succeeded)
        succeeded.attempts = 1
        for state, at in (
            (JobState.ADMITTED, 8),
            (JobState.RUNNING, 9),
            (JobState.SUCCEEDED, 10),
        ):
            succeeded.transition(state, at=at)
            store.record_transition(succeeded, at)
        succeeded.result = JobResult(
            counts={}, state_sha256="s" * 64, num_qubits=6
        )
        store.record_result(succeeded)
        self._assert_replay_equal(path)


class TestCrossProcess:
    def test_next_seq_continues_numbering(self, tmp_path) -> None:
        store = JobStore(tmp_path / "jobs.jsonl")
        store.record_submit(make_job(seq=1))
        store.record_submit(make_job(seq=2))
        assert JobStore(tmp_path / "jobs.jsonl").next_seq() == 3

    def test_cancel_from_second_process(self, tmp_path) -> None:
        path = tmp_path / "jobs.jsonl"
        first = JobStore(path)
        first.record_submit(make_job())
        # Second process: load, cancel, append.
        second = JobStore(path)
        job = second.get("j0001")
        job.transition(JobState.CANCELLED, at=None)
        second.record_transition(job, None)
        # Third process sees the cancellation.
        assert JobStore(path).get("j0001").state is JobState.CANCELLED
