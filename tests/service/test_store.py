"""JSONL job-journal tests: round-trip, corruption, cross-process flows."""

from __future__ import annotations

import pytest

from repro.errors import JobNotFound, ServiceError
from repro.service.job import Job, JobSpec, JobState
from repro.service.store import JobStore


def make_job(seq: int = 1, **spec_kwargs) -> Job:
    spec_kwargs.setdefault("family", "bv")
    spec_kwargs.setdefault("qubits", 6)
    return Job(
        job_id=f"j{seq:04d}", seq=seq, spec=JobSpec(**spec_kwargs),
        fingerprint="f" * 64, footprint_bytes=123.0, submitted_at=1,
    )


class TestRoundTrip:
    def test_submit_and_reload(self, tmp_path) -> None:
        store = JobStore(tmp_path / "jobs.jsonl")
        job = make_job(shots=10, priority=2)
        store.record_submit(job)
        loaded = store.load()["j0001"]
        assert loaded.spec == job.spec
        assert loaded.state is JobState.PENDING
        assert loaded.fingerprint == job.fingerprint
        assert loaded.footprint_bytes == 123.0

    def test_transitions_replay_through_state_machine(self, tmp_path) -> None:
        store = JobStore(tmp_path / "jobs.jsonl")
        job = make_job()
        store.record_submit(job)
        for state, at in ((JobState.ADMITTED, 2), (JobState.RUNNING, 3)):
            job.transition(state, at=at)
            store.record_transition(job, at)
        loaded = store.load()["j0001"]
        assert loaded.state is JobState.RUNNING
        assert loaded.started_at == 3

    def test_result_round_trip(self, tmp_path) -> None:
        from repro.service.job import JobResult

        store = JobStore(tmp_path / "jobs.jsonl")
        job = make_job()
        store.record_submit(job)
        job.result = JobResult(counts={"0": 5}, state_sha256="s" * 64, num_qubits=6)
        job.attempts = 1
        store.record_result(job)
        loaded = store.load()["j0001"]
        assert loaded.result.counts == {"0": 5}
        assert loaded.attempts == 1

    def test_missing_file_is_empty(self, tmp_path) -> None:
        store = JobStore(tmp_path / "absent.jsonl")
        assert store.load() == {}
        assert store.next_seq() == 1


class TestValidation:
    def test_corrupt_line_rejected(self, tmp_path) -> None:
        path = tmp_path / "jobs.jsonl"
        path.write_text('{"event": "submit"\n')
        with pytest.raises(ServiceError, match="corrupt journal line"):
            JobStore(path).load()

    def test_unknown_event_rejected(self, tmp_path) -> None:
        path = tmp_path / "jobs.jsonl"
        path.write_text('{"event": "explode", "id": "j0001"}\n')
        with pytest.raises(ServiceError, match="unknown journal event"):
            JobStore(path).load()

    def test_orphan_transition_rejected(self, tmp_path) -> None:
        path = tmp_path / "jobs.jsonl"
        path.write_text('{"event": "transition", "id": "ghost", "to": "RUNNING"}\n')
        with pytest.raises(ServiceError, match="unknown job"):
            JobStore(path).load()

    def test_illegal_journalled_transition_rejected(self, tmp_path) -> None:
        store = JobStore(tmp_path / "jobs.jsonl")
        store.record_submit(make_job())
        store.append({"event": "transition", "id": "j0001", "to": "SUCCEEDED"})
        with pytest.raises(ServiceError, match="illegal transition"):
            store.load()

    def test_get_unknown_job(self, tmp_path) -> None:
        store = JobStore(tmp_path / "jobs.jsonl")
        store.record_submit(make_job())
        with pytest.raises(JobNotFound):
            store.get("j9999")
        assert store.get("j0001").job_id == "j0001"


class TestCrossProcess:
    def test_next_seq_continues_numbering(self, tmp_path) -> None:
        store = JobStore(tmp_path / "jobs.jsonl")
        store.record_submit(make_job(seq=1))
        store.record_submit(make_job(seq=2))
        assert JobStore(tmp_path / "jobs.jsonl").next_seq() == 3

    def test_cancel_from_second_process(self, tmp_path) -> None:
        path = tmp_path / "jobs.jsonl"
        first = JobStore(path)
        first.record_submit(make_job())
        # Second process: load, cancel, append.
        second = JobStore(path)
        job = second.get("j0001")
        job.transition(JobState.CANCELLED, at=None)
        second.record_transition(job, None)
        # Third process sees the cancellation.
        assert JobStore(path).get("j0001").state is JobState.CANCELLED
