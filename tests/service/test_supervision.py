"""Watchdog supervisor, circuit breakers, and cancellation tokens."""

from __future__ import annotations

import time

import pytest

from repro.errors import JobCancelled, ServiceError
from repro.reliability.cancellation import USER_KINDS, CancellationToken
from repro.service.supervision import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    SupervisionConfig,
    Supervisor,
)


class TestCancellationToken:
    def test_poll_beats_then_raises_once_cancelled(self):
        beats = []
        token = CancellationToken(on_beat=lambda: beats.append(1))
        token.poll()
        token.poll()
        assert len(beats) == 2
        assert token.cancel("stop it", kind="user")
        with pytest.raises(JobCancelled, match="stop it") as excinfo:
            token.poll()
        assert excinfo.value.kind == "user"

    def test_first_cancel_wins(self):
        token = CancellationToken()
        assert token.cancel("first", kind="deadline")
        assert not token.cancel("second", kind="user")
        with pytest.raises(JobCancelled, match="first") as excinfo:
            token.raise_if_cancelled()
        assert excinfo.value.kind == "deadline"

    def test_touch_advances_heartbeat(self):
        token = CancellationToken()
        before = token.last_beat
        time.sleep(0.002)
        token.touch()
        assert token.last_beat > before

    def test_user_kinds(self):
        assert "user" in USER_KINDS
        assert "shutdown" in USER_KINDS
        assert "deadline" not in USER_KINDS
        assert "stall" not in USER_KINDS


class TestSupervisorScan:
    def test_deadline_exceeded_is_reaped(self):
        reaped = []
        sup = Supervisor(
            SupervisionConfig(stall_timeout_seconds=1000.0),
            on_reap=lambda job_id, kind: reaped.append((job_id, kind)),
        )
        token = CancellationToken()
        sup.watch("j0001", token, deadline_seconds=5.0)
        start = time.monotonic()
        assert sup.scan(now=start + 1.0) == 0
        assert sup.scan(now=start + 60.0) == 1
        assert reaped == [("j0001", "deadline")]
        assert token.cancelled
        with pytest.raises(JobCancelled) as excinfo:
            token.raise_if_cancelled()
        assert excinfo.value.kind == "deadline"
        assert sup.watched() == 0  # reaped entries are released

    def test_stale_heartbeat_is_reaped_as_stall(self):
        reaped = []
        sup = Supervisor(
            SupervisionConfig(stall_timeout_seconds=0.5),
            on_reap=lambda job_id, kind: reaped.append((job_id, kind)),
        )
        token = CancellationToken()
        sup.watch("j0001", token, deadline_seconds=None)
        assert sup.scan(now=token.last_beat + 0.1) == 0
        assert sup.scan(now=token.last_beat + 10.0) == 1
        assert reaped == [("j0001", "stall")]

    def test_heartbeat_defers_the_stall_reap(self):
        sup = Supervisor(
            SupervisionConfig(stall_timeout_seconds=0.5), on_reap=lambda *a: None
        )
        token = CancellationToken()
        sup.watch("j0001", token, deadline_seconds=None)
        token.touch()
        assert sup.scan(now=token.last_beat + 0.1) == 0
        assert sup.watched() == 1

    def test_released_job_is_not_reaped(self):
        sup = Supervisor(SupervisionConfig(), on_reap=lambda *a: None)
        token = CancellationToken()
        sup.watch("j0001", token, deadline_seconds=0.001)
        sup.release("j0001")
        assert sup.scan(now=time.monotonic() + 100.0) == 0
        assert not token.cancelled

    def test_supervisor_thread_reaps_live(self):
        reaped = []
        sup = Supervisor(
            SupervisionConfig(
                poll_interval_seconds=0.01, stall_timeout_seconds=0.05
            ),
            on_reap=lambda job_id, kind: reaped.append(kind),
        )
        token = CancellationToken()
        with sup:
            sup.watch("j0001", token, deadline_seconds=None)
            deadline = time.monotonic() + 5.0
            while not token.cancelled and time.monotonic() < deadline:
                time.sleep(0.01)
        assert token.cancelled
        assert reaped == ["stall"]
        assert not sup.alive

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            SupervisionConfig(poll_interval_seconds=0.0)
        with pytest.raises(ServiceError):
            SupervisionConfig(stall_timeout_seconds=-1.0)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=3))
        now = 100.0
        for _ in range(2):
            breaker.record_failure(now)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(now)
        assert breaker.state is BreakerState.OPEN
        assert breaker.decision(now + 0.1) == "reject"

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=2))
        breaker.record_failure(1.0)
        breaker.record_success()
        breaker.record_failure(2.0)
        assert breaker.state is BreakerState.CLOSED

    def test_cooldown_admits_a_single_probe(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, cooldown_seconds=10.0)
        )
        breaker.record_failure(0.0)
        assert breaker.decision(5.0) == "reject"  # still cooling
        assert breaker.decision(11.0) == "allow"  # the half-open probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.decision(11.1) == "defer"  # one probe at a time
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.decision(11.2) == "allow"

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, cooldown_seconds=10.0)
        )
        breaker.record_failure(0.0)
        assert breaker.decision(11.0) == "allow"
        breaker.record_failure(12.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.decision(13.0) == "reject"
        assert breaker.decision(23.0) == "allow"  # cooldown restarts from 12.0

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ServiceError):
            BreakerConfig(cooldown_seconds=-1.0)


class TestBreakerBoard:
    def test_per_fingerprint_isolation_and_transitions(self):
        transitions = []
        clock = iter(float(i) for i in range(100))
        board = BreakerBoard(
            BreakerConfig(failure_threshold=1, cooldown_seconds=1000.0),
            on_transition=lambda fp, old, new: transitions.append(
                (fp, old.value, new.value)
            ),
            now=lambda: next(clock),
        )
        board.record_failure("aaaa")
        assert board.decision("aaaa") == "reject"
        assert board.decision("bbbb") == "allow"  # other circuits unaffected
        assert transitions == [("aaaa", "closed", "open")]
        assert board.state_counts() == {"closed": 1, "half_open": 0, "open": 1}
        assert board.state_of("aaaa") is BreakerState.OPEN
