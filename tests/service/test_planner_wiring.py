"""Service-layer wiring of the adaptive backend planner.

Covers the satellite guarantees: the result cache keys on backend and
precision, journal lines round-trip the new spec fields while legacy
lines replay with the pre-planner defaults, ``execute_job`` runs
non-dense backends end to end, and submission prices planner-routed jobs
(and rejects the combinations the planner cannot honour).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ServiceError
from repro.hardware.specs import MACHINES
from repro.reliability.policy import DEFAULT_POLICY
from repro.service import BatchService, JobStore
from repro.service.job import JobResult, JobSpec, cache_key
from repro.service.service import execute_job

P100 = MACHINES["p100"]


class TestCacheKey:
    def test_backend_and_precision_fold_into_the_key(self) -> None:
        base = JobSpec(family="bv", qubits=8, shots=16)
        keys = {
            cache_key("fp", base),
            cache_key("fp", dataclasses.replace(base, backend="auto")),
            cache_key("fp", dataclasses.replace(base, backend="stabilizer")),
            cache_key("fp", dataclasses.replace(base, precision="single")),
            cache_key("fp", dataclasses.replace(base, precision="auto")),
        }
        assert len(keys) == 5

    def test_identical_specs_share_a_key(self) -> None:
        a = JobSpec(family="bv", qubits=8, backend="auto", precision="auto")
        b = JobSpec(family="bv", qubits=8, backend="auto", precision="auto")
        assert cache_key("fp", a) == cache_key("fp", b)

    def test_default_spec_key_is_unchanged_by_the_new_fields(self) -> None:
        # Pre-planner journals replay with implicit statevector/double;
        # their cached results must stay addressable.
        spec = JobSpec(family="bv", qubits=8)
        assert spec.backend == "statevector"
        assert spec.precision == "double"


class TestSpecSerialisation:
    def test_defaults_are_omitted_from_journals(self) -> None:
        payload = JobSpec(family="bv", qubits=8).to_dict()
        assert "backend" not in payload
        assert "precision" not in payload

    def test_round_trip_preserves_backend_and_precision(self) -> None:
        spec = JobSpec(family="w", qubits=10, backend="auto", precision="single")
        restored = JobSpec.from_dict(spec.to_dict())
        assert restored == spec

    def test_legacy_line_replays_as_dense_double(self) -> None:
        # A journal written before the planner existed has no backend or
        # precision keys; it must deserialize to the old behaviour.
        spec = JobSpec.from_dict({"family": "bv", "qubits": 8, "shots": 4})
        assert spec.backend == "statevector"
        assert spec.precision == "double"

    def test_unknown_backend_rejected(self) -> None:
        with pytest.raises(ServiceError, match="backend"):
            JobSpec(family="bv", qubits=8, backend="tensor")

    def test_unknown_precision_rejected(self) -> None:
        with pytest.raises(ServiceError, match="precision"):
            JobSpec(family="bv", qubits=8, precision="quad")


class TestResultSerialisation:
    def test_round_trip(self) -> None:
        result = JobResult(
            counts={"3": 5}, state_sha256="ab", num_qubits=2,
            backend="sparse", precision="double", precision_fallback=True,
            truncation_error=0.25,
        )
        assert JobResult.from_dict(result.to_dict()) == result

    def test_legacy_payload_defaults(self) -> None:
        restored = JobResult.from_dict({"counts": {}, "state_sha256": "cd"})
        assert restored.backend == "statevector"
        assert restored.precision == "double"
        assert not restored.precision_fallback
        assert restored.truncation_error == 0.0


class TestExecuteJob:
    def _run(self, spec: JobSpec) -> JobResult:
        return execute_job(spec, P100, DEFAULT_POLICY)

    def test_auto_routes_clifford_to_stabilizer(self) -> None:
        result = self._run(
            JobSpec(family="bv", qubits=10, shots=32, backend="auto")
        )
        assert result.backend == "stabilizer"
        assert sum(result.counts.values()) == 32
        assert len(result.state_sha256) == 64

    def test_auto_routes_w_state_to_sparse(self) -> None:
        result = self._run(
            JobSpec(family="w", qubits=12, shots=16, backend="auto")
        )
        assert result.backend == "sparse"
        # Every W-state outcome is a one-hot basis state.
        assert all(
            bin(int(index)).count("1") == 1 for index in result.counts
        )

    def test_single_precision_statevector(self) -> None:
        result = self._run(
            JobSpec(family="qft", qubits=8, shots=16, precision="single")
        )
        assert result.backend == "statevector"
        assert result.precision == "single"
        assert sum(result.counts.values()) == 16

    def test_default_spec_digest_matches_pre_planner_hash(self) -> None:
        # Same job, submitted twice with the byte-identical default path.
        first = self._run(JobSpec(family="qft", qubits=8, shots=8))
        second = self._run(JobSpec(family="qft", qubits=8, shots=8))
        assert first.precision == "double"
        assert first.state_sha256 == second.state_sha256
        assert first.counts == second.counts


class TestServiceSubmission:
    def test_fault_plan_requires_the_default_path(self) -> None:
        service = BatchService(machine=P100, workers=1)
        with pytest.raises(ServiceError, match="fault"):
            service.submit(JobSpec(
                family="bv", qubits=8, fault_plan="seed=7,transfer=0.05",
                backend="auto",
            ))
        with pytest.raises(ServiceError, match="fault"):
            service.submit(JobSpec(
                family="bv", qubits=8, fault_plan="seed=7,transfer=0.05",
                precision="single",
            ))

    def test_planner_jobs_run_and_count_selection(self) -> None:
        service = BatchService(machine=P100, workers=1)
        service.submit(JobSpec(
            family="bv", qubits=10, shots=8, backend="auto", precision="auto",
        ))
        service.submit(JobSpec(family="bv", qubits=10, shots=8))
        snapshot = service.run_until_complete()
        assert snapshot["counters"]["jobs_succeeded"] == 2
        assert snapshot["counters"].get("planner.selected.stabilizer", 0) >= 1

    def test_auto_and_explicit_jobs_do_not_share_cache(self) -> None:
        service = BatchService(machine=P100, workers=1)
        auto = service.submit(JobSpec(
            family="bv", qubits=10, shots=8, backend="auto",
        ))
        dense = service.submit(JobSpec(family="bv", qubits=10, shots=8))
        assert auto.cache_key != dense.cache_key
        snapshot = service.run_until_complete()
        assert snapshot["cache"]["hits"] == 0

    def test_journal_round_trips_planner_specs(self, tmp_path) -> None:
        journal = tmp_path / "journal.jsonl"
        service = BatchService(
            machine=P100, workers=1, journal=JobStore(journal)
        )
        submitted = service.submit(JobSpec(
            family="w", qubits=10, shots=8, backend="auto", precision="auto",
        ))
        service.run_until_complete()
        reloaded = JobStore(journal).load()[submitted.job_id]
        assert reloaded.spec.backend == "auto"
        assert reloaded.spec.precision == "auto"
        assert reloaded.result is not None
        assert reloaded.result.backend == "sparse"
