"""End-to-end batch-service tests: the ISSUE's acceptance criteria live here.

* duplicate submissions hit the cache and return results identical to a
  fresh simulation;
* ``workers=1`` runs are deterministic down to the exported metrics bytes;
* admission control provably bounds the aggregate admitted footprint;
* policies order execution as specified (priority, SJF via the cost model);
* cancelling a PENDING job guarantees it never runs;
* a job failing under an injected fault plan is retried per the
  reliability policy, visibly in the metrics.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time

import pytest

from repro.analysis.capacity import host_footprint_bytes
from repro.circuits.library import get_circuit
from repro.core.simulator import QGpuSimulator
from repro.errors import AdmissionError, JobNotFound, ServiceError
from repro.reliability.faults import FaultPlan
from repro.reliability.policy import STRICT_POLICY, RecoveryPolicy
from repro.service import (
    BatchService,
    BreakerConfig,
    JobSpec,
    JobState,
    JobStore,
    SupervisionConfig,
    load_manifest,
)
from repro.service.chaos import ChaosJournal, SimulatedCrash


def service(**kwargs) -> BatchService:
    kwargs.setdefault("workers", 1)
    return BatchService(**kwargs)


class TestCacheIntegration:
    def test_duplicates_hit_cache_with_identical_results(self) -> None:
        svc = service()
        first = svc.submit(JobSpec(family="bv", qubits=8, shots=50))
        other = svc.submit(JobSpec(family="gs", qubits=6, shots=50))
        duplicate = svc.submit(JobSpec(family="bv", qubits=8, shots=50))
        snap = svc.run_until_complete()

        assert snap["cache"]["hits"] == 1
        assert snap["cache"]["misses"] == 2
        assert not first.cache_hit and duplicate.cache_hit and not other.cache_hit
        # Hit and miss paths agree exactly - counts and amplitude digest.
        assert duplicate.result.state_sha256 == first.result.state_sha256
        assert duplicate.result.counts == first.result.counts
        # ... and both equal a direct simulator run of the same circuit.
        direct = QGpuSimulator().run(get_circuit("bv", 8))
        digest = hashlib.sha256(direct.amplitudes.tobytes()).hexdigest()
        assert first.result.state_sha256 == digest

    def test_concurrent_duplicates_deduplicate_in_flight(self) -> None:
        svc = service(workers=4)
        jobs = [svc.submit(JobSpec(family="qft", qubits=8, shots=10))
                for _ in range(4)]
        snap = svc.run_until_complete()
        # Only one execution: the other three were held while the first
        # was in flight, then served from the cache.
        assert snap["cache"]["misses"] == 1
        assert snap["cache"]["hits"] == 3
        digests = {job.result.state_sha256 for job in jobs}
        assert len(digests) == 1

    def test_eviction_under_tiny_budget(self) -> None:
        svc = service(cache_budget_bytes=600)
        for seed in range(4):
            svc.submit(JobSpec(family="rqc", qubits=6, seed=seed))
        snap = svc.run_until_complete()
        assert snap["cache"]["evictions"] > 0
        assert snap["cache"]["stored_bytes"] <= 600
        assert all(job.state is JobState.SUCCEEDED for job in svc.jobs)


class TestDeterminism:
    @staticmethod
    def _run(policy: str) -> str:
        svc = service(policy=policy, seed=11)
        for fam, n, shots in [("bv", 8, 40), ("gs", 6, 40), ("bv", 8, 40),
                              ("qft", 6, 0), ("gs", 6, 40), ("bv", 8, 40)]:
            svc.submit(JobSpec(family=fam, qubits=n, shots=shots))
        svc.run_until_complete()
        return svc.metrics_json()

    @pytest.mark.parametrize("policy", ["fifo", "priority", "sjf"])
    def test_single_worker_metrics_are_byte_identical(self, policy: str) -> None:
        assert self._run(policy) == self._run(policy)

    def test_deterministic_mode_uses_logical_clock(self) -> None:
        svc = service()
        assert svc.deterministic
        svc.submit(JobSpec(family="bv", qubits=6))
        svc.run_until_complete()
        record = json.loads(svc.metrics_json())["jobs"][0]
        assert isinstance(record["wait_time"], int)
        assert isinstance(record["run_time"], int)


class TestAdmissionControl:
    def test_aggregate_footprint_bounded_while_all_complete(self) -> None:
        footprint = host_footprint_bytes(8)
        budget = 2.5 * footprint  # at most two concurrent 8-qubit jobs
        svc = BatchService(workers=4, memory_budget_bytes=budget)
        for seed in range(6):  # distinct circuits: no cache short-circuit
            svc.submit(JobSpec(family="rqc", qubits=8, seed=seed))
        combined = sum(job.footprint_bytes for job in svc.jobs)
        assert combined > budget  # the workload genuinely overcommits
        snap = svc.run_until_complete()

        assert snap["admission"]["peak_bytes"] <= budget
        assert snap["admission"]["deferrals"] > 0  # contention really happened
        assert all(job.state is JobState.SUCCEEDED for job in svc.jobs)

    def test_never_fitting_job_rejected_at_submit(self) -> None:
        svc = service(memory_budget_bytes=host_footprint_bytes(6))
        with pytest.raises(AdmissionError, match="can never be admitted"):
            svc.submit(JobSpec(family="bv", qubits=12))
        assert svc.jobs == []  # the rejected job never entered the queue


class TestPolicies:
    def test_priority_order_respected(self) -> None:
        svc = service(policy="priority")
        low = svc.submit(JobSpec(family="bv", qubits=6, priority=0))
        high = svc.submit(JobSpec(family="gs", qubits=6, priority=5))
        mid = svc.submit(JobSpec(family="qft", qubits=6, priority=2))
        svc.run_until_complete()
        assert high.started_at < mid.started_at < low.started_at

    def test_sjf_runs_cheapest_estimate_first(self) -> None:
        svc = service(policy="sjf")
        wide = svc.submit(JobSpec(family="bv", qubits=12))
        narrow = svc.submit(JobSpec(family="bv", qubits=6))
        assert narrow.estimated_seconds < wide.estimated_seconds
        svc.run_until_complete()
        assert narrow.started_at < wide.started_at

    def test_fifo_ignores_priority(self) -> None:
        svc = service(policy="fifo")
        first = svc.submit(JobSpec(family="bv", qubits=6, priority=0))
        second = svc.submit(JobSpec(family="gs", qubits=6, priority=9))
        svc.run_until_complete()
        assert first.started_at < second.started_at


class TestCancellation:
    def test_cancelled_pending_job_never_runs(self) -> None:
        svc = service()
        keep = svc.submit(JobSpec(family="bv", qubits=6))
        doomed = svc.submit(JobSpec(family="gs", qubits=6))
        svc.cancel(doomed.job_id)
        snap = svc.run_until_complete()
        assert doomed.state is JobState.CANCELLED
        assert doomed.attempts == 0 and doomed.result is None
        assert keep.state is JobState.SUCCEEDED
        assert snap["counters"]["jobs_cancelled"] == 1

    def test_cannot_cancel_terminal_job(self) -> None:
        svc = service()
        job = svc.submit(JobSpec(family="bv", qubits=6))
        svc.run_until_complete()
        with pytest.raises(ServiceError, match="terminal jobs cannot be cancelled"):
            svc.cancel(job.job_id)

    def test_unknown_job_raises(self) -> None:
        with pytest.raises(JobNotFound):
            service().cancel("j9999")


class TestRetries:
    def test_faulting_job_retried_per_reliability_policy(self) -> None:
        # The strict in-run policy turns the first injected transfer fault
        # into an IntegrityError; the service-level policy then retries the
        # whole job up to its attempt budget.
        retry3 = RecoveryPolicy(max_transfer_attempts=3)
        svc = service(recovery=retry3, sim_recovery=STRICT_POLICY)
        bad = svc.submit(JobSpec(
            family="bv", qubits=6, fault_plan="seed=3,transfer=1.0"
        ))
        good = svc.submit(JobSpec(family="bv", qubits=6))
        snap = svc.run_until_complete()

        assert bad.state is JobState.FAILED
        assert bad.attempts == 3
        assert snap["counters"]["jobs_retried"] == 2
        assert snap["counters"]["job_attempt_failures"] == 3
        assert snap["counters"]["jobs_failed"] == 1
        assert snap["retry_backoff_seconds"] == pytest.approx(
            retry3.backoff_seconds(1) + retry3.backoff_seconds(2)
        )
        assert bad.error  # failure message recorded on the job
        assert good.state is JobState.SUCCEEDED

    def test_no_retry_when_policy_raises(self) -> None:
        svc = service(recovery=STRICT_POLICY, sim_recovery=STRICT_POLICY)
        job = svc.submit(JobSpec(
            family="bv", qubits=6, fault_plan="seed=3,transfer=1.0"
        ))
        snap = svc.run_until_complete()
        assert job.state is JobState.FAILED
        assert job.attempts == 1
        assert snap["counters"].get("jobs_retried", 0) == 0

    def test_retries_recorded_in_job_metrics(self) -> None:
        svc = service(sim_recovery=STRICT_POLICY)
        svc.submit(JobSpec(family="bv", qubits=6, fault_plan="seed=3,transfer=1.0"))
        snap = svc.run_until_complete()
        record = snap["jobs"][0]
        assert record["state"] == "FAILED"
        assert record["attempts"] == 4  # DEFAULT_POLICY budget
        assert record["error"]


class TestManifest:
    def test_copies_expand(self, tmp_path) -> None:
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps({"jobs": [
            {"family": "bv", "qubits": 6, "copies": 3},
            {"family": "gs", "qubits": 6},
        ]}))
        specs = load_manifest(path)
        assert len(specs) == 4
        assert sum(1 for s in specs if s.family == "bv") == 3

    def test_bare_list_accepted(self, tmp_path) -> None:
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps([{"family": "bv", "qubits": 6}]))
        assert len(load_manifest(path)) == 1

    @pytest.mark.parametrize("text", [
        "not json", '{"jobs": 5}', '[{"family": "bv", "qubits": 6, "copies": 0}]',
        '[["nope"]]',
    ])
    def test_malformed_manifest_rejected(self, tmp_path, text: str) -> None:
        path = tmp_path / "jobs.json"
        path.write_text(text)
        with pytest.raises(ServiceError):
            load_manifest(path)


class TestJournalIntegration:
    def test_submit_run_status_across_instances(self, tmp_path) -> None:
        journal = tmp_path / "jobs.jsonl"
        producer = service(journal=journal)
        producer.submit(JobSpec(family="bv", qubits=6, shots=10))
        producer.submit(JobSpec(family="gs", qubits=6))

        runner = service(journal=journal)
        adopted = runner.adopt_pending()
        assert [job.job_id for job in adopted] == ["j0001", "j0002"]
        runner.run_until_complete()

        from repro.service import JobStore

        jobs = JobStore(journal).load()
        assert all(job.state is JobState.SUCCEEDED for job in jobs.values())
        assert jobs["j0001"].result.counts  # results persisted

    def test_journal_seq_continues_across_instances(self, tmp_path) -> None:
        journal = tmp_path / "jobs.jsonl"
        service(journal=journal).submit(JobSpec(family="bv", qubits=6))
        job = service(journal=journal).submit(JobSpec(family="gs", qubits=6))
        assert job.job_id == "j0002"

    def test_adopt_requires_journal(self) -> None:
        with pytest.raises(ServiceError, match="requires a journal"):
            service().adopt_pending()


class TestValidation:
    def test_unknown_version_rejected(self) -> None:
        with pytest.raises(ServiceError, match="unknown version"):
            service().submit(JobSpec(family="bv", qubits=6, version="Q-TPU"))

    def test_workers_must_be_positive(self) -> None:
        with pytest.raises(ServiceError):
            BatchService(workers=0)

    def test_extension_versions_servable(self) -> None:
        svc = service()
        job = svc.submit(JobSpec(family="bv", qubits=6, version="Q-GPU+basis"))
        svc.run_until_complete()
        assert job.state is JobState.SUCCEEDED


class TestSimWorkers:
    def test_bad_sim_workers_rejected_at_construction(self) -> None:
        with pytest.raises(Exception, match="workers"):
            BatchService(workers=1, sim_workers=0)

    def test_parallel_sim_matches_serial_counts(self) -> None:
        # BV lands all probability on one basis state, so the sampled
        # counts are invariant to the parallel engine's float reordering.
        spec = JobSpec(family="bv", qubits=8, shots=50)
        svc_serial = service(sim_workers=1)
        serial_job = svc_serial.submit(spec)
        svc_serial.run_until_complete()
        svc_parallel = service(sim_workers=4)
        parallel_job = svc_parallel.submit(spec)
        snap = svc_parallel.run_until_complete()
        assert parallel_job.state is JobState.SUCCEEDED
        assert parallel_job.result.counts == serial_job.result.counts
        assert snap["config"]["sim_workers"] == 4

    def test_parallel_sim_is_run_to_run_deterministic(self) -> None:
        # The engine's partitioning is fixed, so two parallel runs agree
        # down to the amplitude digest even though parallel != serial
        # bit-for-bit.
        spec = JobSpec(family="qft", qubits=8, shots=10)
        digests = []
        for _ in range(2):
            svc = service(sim_workers=4)
            job = svc.submit(spec)
            svc.run_until_complete()
            digests.append(job.result.state_sha256)
        assert digests[0] == digests[1]


class TestMetricsAbsorption:
    def test_absorb_result_idempotent_per_job(self) -> None:
        from repro.service import JobResult, MetricsRegistry

        metrics = MetricsRegistry()
        result = JobResult(chunk_updates_total=10, chunk_updates_skipped=4,
                           transfers=2, retries=1, faults=1)
        metrics.absorb_result(result, job_id="j0001")
        metrics.absorb_result(result, job_id="j0001")  # journal replay
        assert metrics.counters.get("sim.chunk_updates_total") == 10
        assert metrics.counters.get("sim.retries") == 1
        # A different job's identical stats still count.
        metrics.absorb_result(result, job_id="j0002")
        assert metrics.counters.get("sim.chunk_updates_total") == 20

    def test_absorb_without_job_id_stays_unguarded(self) -> None:
        from repro.service import JobResult, MetricsRegistry

        metrics = MetricsRegistry()
        result = JobResult(chunk_updates_total=5)
        metrics.absorb_result(result)
        metrics.absorb_result(result)
        assert metrics.counters.get("sim.chunk_updates_total") == 10

    def test_service_run_absorbs_each_job_once(self) -> None:
        svc = service()
        svc.submit(JobSpec(family="bv", qubits=6))
        svc.submit(JobSpec(family="bv", qubits=6))  # cache hit: not absorbed twice
        snap = svc.run_until_complete()
        direct = QGpuSimulator().run(get_circuit("bv", 6))
        assert (snap["counters"]["sim.chunk_updates_total"]
                == direct.chunk_updates_total)

    def test_job_latency_histograms_recorded(self) -> None:
        svc = service()
        svc.submit(JobSpec(family="bv", qubits=6))
        svc.submit(JobSpec(family="gs", qubits=6))
        svc.run_until_complete()
        snapshot = svc.metrics.counters.histogram_snapshot()
        assert snapshot["job_latency_seconds"]["count"] == 2
        assert snapshot["job_wait_seconds"]["count"] == 2
        assert snapshot["job_latency_seconds"]["sum"] > 0


class TestSelfHealing:
    def test_deadline_exceeded_job_is_reaped_retried_and_counted(self) -> None:
        # Every attempt stalls (chaos), so only the watchdog's deadline
        # kill can unstick the worker; the retry budget then runs out.
        svc = service(
            supervision=SupervisionConfig(poll_interval_seconds=0.01),
            chaos_plan=FaultPlan(worker_stall_rate=1.0),
            recovery=RecoveryPolicy(max_transfer_attempts=2, backoff_base=1e-4),
        )
        job = svc.submit(JobSpec(family="bv", qubits=6, deadline_seconds=0.05))
        snap = svc.run_until_complete()
        assert job.state is JobState.FAILED
        assert "deadline exceeded" in job.error
        assert job.attempts == 2
        assert snap["counters"]["watchdog.reaps"] == 2
        assert snap["counters"]["deadline.kills"] == 2
        assert snap["counters"]["jobs_retried"] == 1
        assert snap["counters"]["jobs_failed"] == 1
        assert snap["supervision"]["watchdog_reaps"] == 2

    def test_stalled_worker_is_reaped_as_stall(self) -> None:
        svc = service(
            supervision=SupervisionConfig(
                poll_interval_seconds=0.01, stall_timeout_seconds=0.05
            ),
            chaos_plan=FaultPlan(worker_stall_rate=1.0),
            recovery=RecoveryPolicy(max_transfer_attempts=1, backoff_base=1e-4),
        )
        job = svc.submit(JobSpec(family="bv", qubits=6))
        snap = svc.run_until_complete()
        assert job.state is JobState.FAILED
        assert "worker stalled" in job.error
        assert snap["counters"]["stall.kills"] == 1
        assert snap["counters"]["jobs_failed"] == 1

    def test_supervision_disabled_leaves_no_watchdog_counters(self) -> None:
        svc = service(supervision=SupervisionConfig(enabled=False))
        svc.submit(JobSpec(family="bv", qubits=6, deadline_seconds=3600.0))
        snap = svc.run_until_complete()
        assert snap["counters"].get("watchdog.reaps", 0) == 0
        assert snap["supervision"]["enabled"] is False


class TestRunningCancellation:
    def test_cancel_running_job_stops_cooperatively(self) -> None:
        # The stall keeps the worker spinning on its token until the
        # user's cancel flips it; no watchdog involvement.
        svc = service(
            supervision=SupervisionConfig(enabled=False),
            chaos_plan=FaultPlan(worker_stall_rate=1.0),
        )
        job = svc.submit(JobSpec(family="bv", qubits=6))
        runner = threading.Thread(target=svc.run_until_complete)
        runner.start()
        try:
            deadline = time.monotonic() + 5.0
            while job.state is not JobState.RUNNING and time.monotonic() < deadline:
                time.sleep(0.005)
            assert job.state is JobState.RUNNING
            svc.cancel(job.job_id)
        finally:
            runner.join(timeout=5.0)
        assert not runner.is_alive()
        assert job.state is JobState.CANCELLED
        assert job.result is None
        assert svc.metrics.counters.get("jobs_cancel_requested") == 1
        assert svc.metrics.counters.get("jobs_cancelled") == 1
        assert svc.metrics.counters.get("jobs_failed", 0) == 0

    def test_cancel_between_queue_snapshot_and_dispatch_never_runs(self) -> None:
        # Force the race deterministically: cancel lands after the
        # dispatch pass has snapshotted the queue (inside policy.order)
        # but before the job is handed to the pool.  The dispatcher's
        # under-lock state re-check must drop it.
        svc = service()
        job = svc.submit(JobSpec(family="bv", qubits=6))
        original_order = svc.policy.order

        def order_then_cancel(pending):
            ordered = list(original_order(pending))
            if any(j.job_id == job.job_id for j in ordered):
                svc.cancel(job.job_id)
            return ordered

        svc.policy.order = order_then_cancel  # type: ignore[method-assign]
        snap = svc.run_until_complete()
        assert job.state is JobState.CANCELLED
        assert job.attempts == 0
        assert job.result is None
        assert snap["counters"]["jobs_cancelled"] == 1
        assert snap["counters"].get("jobs_succeeded", 0) == 0
        assert svc.admission.snapshot()["in_use_bytes"] == 0


class TestRestartRecovery:
    def test_running_jobs_requeued_exactly_once_after_crash(self, tmp_path) -> None:
        path = tmp_path / "jobs.jsonl"
        journal = ChaosJournal(path, FaultPlan(seed=1))
        svc = service(journal=journal)
        first = svc.submit(JobSpec(family="bv", qubits=6, shots=5))
        second = svc.submit(JobSpec(family="gs", qubits=5))
        # Die on the first job's SUCCEEDED append (ADMITTED, RUNNING,
        # then the kill): the journal records it RUNNING at crash time.
        journal.arm_kill(3)
        with pytest.raises(SimulatedCrash):
            svc.run_until_complete()
        assert JobStore(path).get(first.job_id).state is JobState.RUNNING

        restarted = BatchService(workers=1, journal=JobStore(path))
        recovered = restarted.recover()
        assert {j.job_id for j in recovered} == {first.job_id, second.job_id}
        requeued = restarted.job(first.job_id)
        assert requeued.state is JobState.PENDING
        assert requeued.attempts == 1  # the crashed attempt stays charged
        assert restarted.metrics.counters.get("recovery.requeued") == 1
        assert restarted.metrics.counters.get("jobs_adopted") == 1
        restarted.run_until_complete()
        jobs = JobStore(path).load()
        assert all(j.state is JobState.SUCCEEDED for j in jobs.values())
        # The journal is the ground truth: one terminal per job, ever.
        terminals: dict[str, int] = {}
        for event in JobStore(path).iter_events():
            if event["event"] == "transition" and event["to"] == "SUCCEEDED":
                terminals[event["id"]] = terminals.get(event["id"], 0) + 1
        assert terminals == {first.job_id: 1, second.job_id: 1}

    def test_second_recover_does_not_requeue_again(self, tmp_path) -> None:
        path = tmp_path / "jobs.jsonl"
        journal = ChaosJournal(path, FaultPlan(seed=1))
        svc = service(journal=journal)
        job = svc.submit(JobSpec(family="bv", qubits=6))
        journal.arm_kill(3)
        with pytest.raises(SimulatedCrash):
            svc.run_until_complete()
        restarted = BatchService(workers=1, journal=JobStore(path))
        assert len(restarted.recover()) == 1
        assert restarted.recover() == []  # idempotent: already adopted
        assert restarted.job(job.job_id).attempts == 1

    def test_recovery_seeds_cache_from_journaled_results(self, tmp_path) -> None:
        path = tmp_path / "jobs.jsonl"
        svc = service(journal=path)
        done = svc.submit(JobSpec(family="bv", qubits=6, shots=5))
        svc.run_until_complete()

        restarted = BatchService(workers=1, journal=JobStore(path))
        restarted.recover()
        duplicate = restarted.submit(JobSpec(family="bv", qubits=6, shots=5))
        snap = restarted.run_until_complete()
        assert duplicate.cache_hit  # served from the seeded cache
        assert duplicate.result.state_sha256 == done.result.state_sha256
        assert snap["counters"]["recovery.cache_seeded"] == 1
        assert snap["cache"]["hits"] == 1
        assert snap["cache"]["misses"] == 0


class TestBreakerIntegration:
    def test_breaker_opens_and_fails_fast_on_repeat_offenders(self) -> None:
        # Every attempt crashes; after two failures the fingerprint's
        # breaker opens, so the third dispatch (and the sibling job with
        # the same circuit) fail fast instead of burning workers.
        svc = service(
            chaos_plan=FaultPlan(worker_crash_rate=1.0),
            breaker=BreakerConfig(failure_threshold=2, cooldown_seconds=3600.0),
            recovery=RecoveryPolicy(max_transfer_attempts=4, backoff_base=1e-4),
        )
        first = svc.submit(JobSpec(family="bv", qubits=6))
        second = svc.submit(JobSpec(family="bv", qubits=6, shots=7))
        assert first.fingerprint == second.fingerprint
        assert first.cache_key != second.cache_key
        snap = svc.run_until_complete()
        assert first.state is JobState.FAILED
        assert second.state is JobState.FAILED
        assert "circuit breaker open" in first.error
        assert "circuit breaker open" in second.error
        assert first.attempts == 3  # crash, crash, fast-fail
        assert second.attempts == 1  # fast-fail without ever running
        assert snap["counters"]["breaker.rejections"] == 2
        assert snap["counters"]["breaker.open_transitions"] == 1
        assert snap["counters"]["job_attempt_failures"] == 2
        assert snap["supervision"]["breakers"]["open"] == 1

    def test_unrelated_fingerprint_unaffected_by_open_breaker(self) -> None:
        svc = service(
            chaos_plan=FaultPlan(worker_crash_rate=1.0, seed=0),
            breaker=BreakerConfig(failure_threshold=1, cooldown_seconds=3600.0),
            recovery=RecoveryPolicy(max_transfer_attempts=1, backoff_base=1e-4),
        )
        crasher = svc.submit(JobSpec(family="bv", qubits=6))
        # seq 2's (job, attempt) hash also crashes under rate 1.0, so give
        # the healthy job a chaos-free service of its own fingerprint by
        # checking only the breaker's isolation, not its success.
        healthy = svc.submit(JobSpec(family="gs", qubits=5))
        svc.run_until_complete()
        assert crasher.state is JobState.FAILED
        assert healthy.error is None or "circuit breaker" not in healthy.error
        assert svc.breakers.state_counts()["open"] >= 1


class TestCacheCorruptionFallthrough:
    def test_corrupt_entry_is_dropped_and_recomputed(self) -> None:
        svc = service(supervision=SupervisionConfig(enabled=False))
        first = svc.submit(JobSpec(family="bv", qubits=6, shots=5))
        svc.run_until_complete()
        assert svc.cache.peek(first.cache_key)
        svc.cache.corrupt_entry(first.cache_key)

        duplicate = svc.submit(JobSpec(family="bv", qubits=6, shots=5))
        snap = svc.run_until_complete()
        assert not duplicate.cache_hit  # CRC check dropped the entry
        assert duplicate.state is JobState.SUCCEEDED
        assert duplicate.result.state_sha256 == first.result.state_sha256
        assert snap["cache"]["corruptions"] == 1
