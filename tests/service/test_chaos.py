"""Chaos harness: simulated crashes, torn writes, and full soaks."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.reliability.faults import FaultEvent, FaultKind, FaultPlan
from repro.service.chaos import ChaosJournal, SimulatedCrash, run_chaos_soak
from repro.service.job import JobState
from repro.service.store import JobStore


MANIFEST = {
    "jobs": [
        {"family": "bv", "qubits": 6, "shots": 20, "copies": 2},
        {"family": "gs", "qubits": 5, "copies": 2},
        {"family": "qft", "qubits": 5, "shots": 10},
    ]
}


@pytest.fixture()
def manifest(tmp_path):
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps(MANIFEST))
    return path


class TestChaosJournal:
    def test_armed_kill_raises_at_the_scheduled_append(self, tmp_path):
        journal = ChaosJournal(tmp_path / "j.jsonl", FaultPlan(seed=1))
        journal.append({"event": "error", "id": "x", "message": "one"})
        journal.arm_kill(2)
        journal.append({"event": "error", "id": "x", "message": "two"})
        with pytest.raises(SimulatedCrash):
            journal.append({"event": "error", "id": "x", "message": "three"})
        # The killed append never reached the file (torn off or dropped).
        lines = (tmp_path / "j.jsonl").read_text().splitlines()
        assert len(lines) == 2
        # A crash disarms: the journal's next incarnation appends cleanly.
        journal.append({"event": "error", "id": "x", "message": "four"})

    def test_torn_kill_leaves_a_recoverable_fragment(self, tmp_path):
        path = tmp_path / "j.jsonl"
        # Force the torn write at the killing append (ordinal 1).
        plan = FaultPlan(
            seed=1,
            forced=(FaultEvent(FaultKind.JOURNAL_TORN_WRITE, gate_index=1),),
        )
        journal = ChaosJournal(path, plan)
        journal.append({"event": "error", "id": "x", "message": "intact"})
        journal.arm_kill(1)
        with pytest.raises(SimulatedCrash):
            journal.append({"event": "error", "id": "x", "message": "torn"})
        assert journal.torn_writes == 1
        raw = path.read_bytes()
        assert not raw.endswith(b"\n")  # the fragment is mid-line
        # Replay tolerates the torn tail; repair truncates it.
        fresh = JobStore(path)
        events = list(fresh.iter_events())
        assert [e["message"] for e in events] == ["intact"]
        removed = fresh.repair_tail()
        assert removed > 0
        assert path.read_bytes().endswith(b"\n")

    def test_ordinals_continue_across_incarnations(self, tmp_path):
        plan = FaultPlan(seed=1)
        first = ChaosJournal(tmp_path / "j.jsonl", plan)
        first.append({"event": "error", "id": "x", "message": "a"})
        second = ChaosJournal(
            tmp_path / "j.jsonl", plan, start_ordinal=first.append_ordinal
        )
        assert second.append_ordinal == 1

    def test_kill_must_be_in_the_future(self, tmp_path):
        journal = ChaosJournal(tmp_path / "j.jsonl", FaultPlan())
        with pytest.raises(ServiceError):
            journal.arm_kill(0)


class TestChaosSoak:
    def test_soak_converges_exactly_once_and_byte_identical(
        self, tmp_path, manifest
    ):
        journal = tmp_path / "soak.jsonl"
        report = run_chaos_soak(
            manifest, journal, seed=3, cycles=2, workers=2, stall_rate=0.0
        )
        assert report["converged"]
        assert report["byte_identical"]
        assert report["violations"] == []
        assert report["duplicate_cache_entries"] == 0
        assert report["states"] == {"SUCCEEDED": 5}
        assert report["crashes"] >= 1  # at least one cycle actually died
        # The journal is the ground truth: every job terminal exactly once.
        jobs = JobStore(journal).load()
        assert len(jobs) == 5
        assert all(j.state is JobState.SUCCEEDED for j in jobs.values())

    def test_soak_refuses_a_preexisting_journal(self, tmp_path, manifest):
        journal = tmp_path / "soak.jsonl"
        journal.write_text("")
        with pytest.raises(ServiceError, match="already exists"):
            run_chaos_soak(manifest, journal)

    def test_soak_is_deterministic_in_journal_shape(self, tmp_path, manifest):
        # Same seed, workers=1: identical crash schedule and append counts.
        first = run_chaos_soak(
            manifest, tmp_path / "a.jsonl", seed=9, cycles=2, workers=1,
            stall_rate=0.0,
        )
        second = run_chaos_soak(
            manifest, tmp_path / "b.jsonl", seed=9, cycles=2, workers=1,
            stall_rate=0.0,
        )
        assert first["journal_appends"] == second["journal_appends"]
        assert first["crashes"] == second["crashes"]
        assert [c["appends"] for c in first["cycle_log"]] == [
            c["appends"] for c in second["cycle_log"]
        ]

    def test_soak_with_heavy_stalls_is_reaped_not_stuck(self, tmp_path, manifest):
        # A large stall rate: many attempts hang and must be reaped by
        # the watchdog (without it, the pool would block forever).  The
        # retry budget absorbs the reaps and the soak still converges.
        report = run_chaos_soak(
            manifest,
            tmp_path / "soak.jsonl",
            seed=5,
            cycles=1,
            workers=2,
            crash_rate=0.0,
            torn_rate=0.0,
            cache_corrupt_rate=0.0,
            stall_rate=0.4,
            stall_timeout=0.1,
        )
        assert report["converged"]
        assert report["violations"] == []
