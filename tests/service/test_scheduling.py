"""Scheduling-policy ordering tests."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service.job import Job, JobSpec
from repro.service.scheduling import (
    FifoPolicy,
    PriorityPolicy,
    SjfPolicy,
    get_policy,
)


def job(seq: int, priority: int = 0, cost: float | None = None) -> Job:
    return Job(
        job_id=f"j{seq:04d}",
        seq=seq,
        spec=JobSpec(family="bv", qubits=6, priority=priority),
        estimated_seconds=cost,
    )


class TestFifo:
    def test_submission_order(self) -> None:
        jobs = [job(3), job(1), job(2)]
        assert [j.seq for j in FifoPolicy().order(jobs)] == [1, 2, 3]


class TestPriority:
    def test_higher_priority_first(self) -> None:
        jobs = [job(1, priority=0), job(2, priority=5), job(3, priority=2)]
        assert [j.seq for j in PriorityPolicy().order(jobs)] == [2, 3, 1]

    def test_fifo_within_level(self) -> None:
        jobs = [job(2, priority=1), job(1, priority=1)]
        assert [j.seq for j in PriorityPolicy().order(jobs)] == [1, 2]


class TestSjf:
    def test_shortest_estimate_first(self) -> None:
        jobs = [job(1, cost=9.0), job(2, cost=1.0), job(3, cost=4.0)]
        assert [j.seq for j in SjfPolicy().order(jobs)] == [2, 3, 1]

    def test_unpriced_jobs_sort_last(self) -> None:
        jobs = [job(1, cost=None), job(2, cost=100.0)]
        assert [j.seq for j in SjfPolicy().order(jobs)] == [2, 1]

    def test_tie_breaks_on_submission(self) -> None:
        jobs = [job(2, cost=1.0), job(1, cost=1.0)]
        assert [j.seq for j in SjfPolicy().order(jobs)] == [1, 2]


class TestRegistry:
    @pytest.mark.parametrize("name", ["fifo", "priority", "sjf"])
    def test_lookup(self, name: str) -> None:
        assert get_policy(name).name == name

    def test_unknown_policy(self) -> None:
        with pytest.raises(ServiceError, match="unknown scheduling policy"):
            get_policy("lottery")

    def test_policies_do_not_mutate_input(self) -> None:
        jobs = [job(2), job(1)]
        FifoPolicy().order(jobs)
        assert [j.seq for j in jobs] == [2, 1]
