"""Shared fixtures and hypothesis settings for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One moderate profile for all property tests: enough examples to matter,
# bounded so the full suite stays fast.
settings.register_profile(
    "repro",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
