"""Tests for residual analysis (Fig. 10 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.residual import (
    consecutive_residuals,
    residual_histogram,
    residual_stats,
)
from repro.errors import CompressionError


class TestConsecutiveResiduals:
    def test_componentwise_not_interleaved(self) -> None:
        # Amplitudes (1+2j, 1+2j): both component residuals are zero; a
        # naive interleaved diff would report im-re cross terms instead.
        amplitudes = np.array([1 + 2j, 1 + 2j], dtype=np.complex128)
        np.testing.assert_array_equal(
            consecutive_residuals(amplitudes), [0.0, 0.0]
        )

    def test_values(self) -> None:
        amplitudes = np.array([1 + 1j, 3 + 5j, 0 + 0j], dtype=np.complex128)
        np.testing.assert_array_equal(
            consecutive_residuals(amplitudes), [2.0, 4.0, -3.0, -5.0]
        )

    def test_accepts_float_stream(self) -> None:
        doubles = np.array([1.0, 0.0, 2.0, 0.0])
        np.testing.assert_array_equal(consecutive_residuals(doubles), [1.0, 0.0])

    def test_short_input_yields_empty(self) -> None:
        assert consecutive_residuals(np.array([1 + 1j])).size == 0

    def test_rejects_wrong_dtype(self) -> None:
        with pytest.raises(CompressionError):
            consecutive_residuals(np.ones(8, dtype=np.int64))


class TestStats:
    def test_constant_state_all_near_zero(self) -> None:
        stats = residual_stats(np.full(64, 0.5 + 0.5j, dtype=np.complex128))
        assert stats.near_zero_fraction == 1.0
        assert stats.mean_abs == 0.0

    def test_spread_state_not_near_zero(self, rng) -> None:
        amplitudes = (rng.normal(size=256) + 1j * rng.normal(size=256)).astype(
            np.complex128
        )
        stats = residual_stats(amplitudes, tolerance=1e-6)
        assert stats.near_zero_fraction < 0.1
        assert stats.p95_abs > stats.mean_abs > 0

    def test_empty_input(self) -> None:
        stats = residual_stats(np.zeros(1, dtype=np.complex128))
        assert stats.near_zero_fraction == 1.0


class TestHistogram:
    def test_histogram_is_symmetric_range(self, rng) -> None:
        amplitudes = (rng.normal(size=128) + 1j * rng.normal(size=128)).astype(
            np.complex128
        )
        counts, edges = residual_histogram(amplitudes, bins=32)
        assert counts.sum() == 2 * 127
        assert edges[0] == pytest.approx(-edges[-1])

    def test_explicit_range(self) -> None:
        amplitudes = np.array([0j, 1 + 0j, 0j, 1 + 0j], dtype=np.complex128)
        counts, edges = residual_histogram(amplitudes, bins=4, value_range=2.0)
        assert edges[0] == -2.0 and edges[-1] == 2.0
        assert counts.sum() == 6
