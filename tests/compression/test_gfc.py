"""Losslessness and format tests for the GFC codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.gfc import (
    MICRO_CHUNK,
    compress,
    compression_ratio,
    decompress,
)
from repro.errors import CompressionError


def bit_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact bit-pattern equality (NaN-safe)."""
    return np.array_equal(
        np.ascontiguousarray(a).view(np.uint64),
        np.ascontiguousarray(b).view(np.uint64),
    )


class TestRoundTrip:
    @given(
        data=st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            min_size=0,
            max_size=300,
        ),
        num_segments=st.integers(1, 5),
    )
    def test_arbitrary_doubles_round_trip(self, data: list[float], num_segments: int) -> None:
        array = np.array(data, dtype=np.float64)
        recovered = decompress(compress(array, num_segments=num_segments))
        assert bit_equal(array, recovered)

    def test_special_values(self) -> None:
        array = np.array(
            [np.nan, np.inf, -np.inf, 0.0, -0.0, 5e-324, 1.7976931348623157e308]
        )
        recovered = decompress(compress(array))
        assert bit_equal(array, recovered)
        # Signed zero and NaN payloads preserved exactly.
        assert np.signbit(recovered[4])
        assert np.isnan(recovered[0])

    def test_complex_amplitudes_round_trip(self, rng) -> None:
        amplitudes = (rng.normal(size=512) + 1j * rng.normal(size=512)).astype(
            np.complex128
        )
        recovered = decompress(compress(amplitudes)).view(np.complex128)
        assert bit_equal(amplitudes.view(np.float64), recovered.view(np.float64))

    def test_exact_micro_chunk_multiple(self, rng) -> None:
        array = rng.normal(size=4 * MICRO_CHUNK)
        assert bit_equal(array, decompress(compress(array)))

    def test_single_element(self) -> None:
        array = np.array([3.14159])
        assert bit_equal(array, decompress(compress(array)))

    def test_empty_array(self) -> None:
        array = np.empty(0, dtype=np.float64)
        assert decompress(compress(array)).size == 0

    def test_many_segments_on_small_input(self, rng) -> None:
        array = rng.normal(size=10)
        assert bit_equal(array, decompress(compress(array, num_segments=5)))


class TestCompressionBehaviour:
    def test_zeros_compress_to_minimum(self) -> None:
        # Zero residuals: half a nibble-byte plus one payload byte per word.
        assert compression_ratio(np.zeros(4096)) == pytest.approx(1.5 / 8)

    def test_constant_array_compresses_well(self) -> None:
        assert compression_ratio(np.full(4096, np.pi)) < 0.25

    def test_random_data_does_not_compress(self, rng) -> None:
        ratio = compression_ratio(rng.normal(size=4096))
        assert ratio > 0.95

    def test_uniform_state_compresses(self) -> None:
        state = np.full(1024, 1 / 32, dtype=np.complex128)
        assert compression_ratio(state) < 0.25

    def test_more_segments_slightly_worse_ratio(self, rng) -> None:
        smooth = np.full(2048, 0.125)
        assert compression_ratio(smooth, 1) <= compression_ratio(smooth, 8) + 1e-9

    def test_empty_ratio_is_one(self) -> None:
        assert compression_ratio(np.empty(0)) == 1.0


class TestFormatErrors:
    def test_bad_magic_rejected(self) -> None:
        stream = bytearray(compress(np.ones(8)))
        stream[0] = ord("X")
        with pytest.raises(CompressionError, match="magic"):
            decompress(bytes(stream))

    def test_truncated_stream_rejected(self) -> None:
        stream = compress(np.ones(100))
        with pytest.raises(CompressionError):
            decompress(stream[: len(stream) - 5])

    def test_trailing_garbage_rejected(self) -> None:
        stream = compress(np.ones(8))
        with pytest.raises(CompressionError, match="trailing"):
            decompress(stream + b"\x00")

    def test_too_short_for_header(self) -> None:
        with pytest.raises(CompressionError, match="too short"):
            decompress(b"GF")

    def test_wrong_dtype_rejected(self) -> None:
        with pytest.raises(CompressionError, match="float64"):
            compress(np.ones(8, dtype=np.float32))

    def test_zero_segments_rejected(self) -> None:
        with pytest.raises(CompressionError):
            compress(np.ones(8), num_segments=0)
