"""Tests for per-family compression profiles and the live-region gather."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.profile import (
    PROFILE_QUBITS,
    family_ratio,
    get_profile,
    live_region,
    measure_profile,
)


class TestLiveRegion:
    def test_full_involvement_returns_everything(self, rng) -> None:
        amplitudes = rng.normal(size=16).astype(np.complex128)
        np.testing.assert_array_equal(
            live_region(amplitudes, 0b1111), amplitudes
        )

    def test_no_involvement_returns_origin(self, rng) -> None:
        amplitudes = rng.normal(size=16).astype(np.complex128)
        np.testing.assert_array_equal(live_region(amplitudes, 0), amplitudes[:1])

    def test_matches_brute_force_subset(self, rng) -> None:
        amplitudes = rng.normal(size=64).astype(np.complex128)
        for involvement in (0b000101, 0b110000, 0b011010):
            expected = np.array(
                [
                    amplitudes[i]
                    for i in range(64)
                    if i & ~involvement == 0
                ]
            )
            np.testing.assert_array_equal(
                live_region(amplitudes, involvement), expected
            )

    def test_live_region_size_is_power_of_involved(self, rng) -> None:
        amplitudes = rng.normal(size=256).astype(np.complex128)
        region = live_region(amplitudes, 0b10100001)
        assert region.size == 8


class TestProfiles:
    def test_profile_fields(self) -> None:
        profile = measure_profile("gs", 10, samples=6)
        assert profile.family == "gs"
        assert profile.num_qubits == 10
        assert 0 < profile.mean_ratio <= 1.5
        assert len(profile.snapshot_ratios) >= 1

    def test_qaoa_more_compressible_than_iqp(self) -> None:
        # The paper's Fig. 10 contrast, as the executor consumes it.
        qaoa = measure_profile("qaoa", 12)
        iqp = measure_profile("iqp", 12)
        assert qaoa.mean_ratio < iqp.mean_ratio

    def test_hchain_and_rqc_poorly_compressible(self) -> None:
        for family in ("hchain", "rqc"):
            assert measure_profile(family, 10).mean_ratio > 0.6

    def test_get_profile_cached(self) -> None:
        first = get_profile("bv", PROFILE_QUBITS)
        second = get_profile("bv", PROFILE_QUBITS)
        assert first is second

    def test_family_ratio_clamped_and_safe(self) -> None:
        assert 0 < family_ratio("qft") <= 1.0
        assert family_ratio("not_a_family") == 1.0
