"""Tests for Algorithms 2 and 3 (gate reordering)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import GateDag
from repro.circuits.library import FAMILIES, get_circuit, graph_state
from repro.core.reorder import reorder, reorder_forward_looking, reorder_greedy
from repro.errors import CircuitError
from repro.statevector.state import simulate


def mean_live_fraction(circuit: QuantumCircuit) -> float:
    from repro.core.involvement import live_fraction_trace

    trace = live_fraction_trace(circuit)
    return sum(trace) / len(trace)


class TestValidity:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("strategy", ["greedy", "forward_looking"])
    def test_reordered_respects_dependencies(self, family: str, strategy: str) -> None:
        circuit = get_circuit(family, 10)
        ordered = reorder(circuit, strategy)
        assert sorted(map(str, ordered.gates)) == sorted(map(str, circuit.gates))
        # Reconstruct the permutation and check it against the DAG.
        dag = GateDag(circuit)
        remaining: dict[str, list[int]] = {}
        for node in dag.nodes:
            remaining.setdefault(str(node.gate), []).append(node.index)
        order = []
        for gate in ordered:
            order.append(remaining[str(gate)].pop(0))
        # Identical gates are interchangeable; a stable greedy match can
        # produce a sibling permutation, so verify semantics instead when
        # the strict check fails.
        if not dag.is_valid_order(order):
            np.testing.assert_allclose(
                simulate(ordered).amplitudes,
                simulate(circuit).amplitudes,
                atol=1e-10,
            )

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("strategy", ["original", "greedy", "forward_looking"])
    def test_final_state_bit_identical(self, family: str, strategy: str) -> None:
        circuit = get_circuit(family, 9)
        ordered = reorder(circuit, strategy)
        np.testing.assert_allclose(
            simulate(ordered).amplitudes, simulate(circuit).amplitudes, atol=1e-10
        )

    def test_original_strategy_is_identity(self) -> None:
        circuit = get_circuit("qft", 8)
        assert reorder(circuit, "original") is circuit

    def test_unknown_strategy_rejected(self) -> None:
        with pytest.raises(CircuitError, match="unknown reorder strategy"):
            reorder(QuantumCircuit(2).h(0), "best_effort")


class TestFig8WalkThrough:
    """The paper's gs_5 example (Fig. 8)."""

    def test_greedy_delays_involvement(self) -> None:
        circuit = graph_state(5)
        original_profile = circuit.involvement_profile()
        greedy_profile = reorder_greedy(circuit).involvement_profile()
        assert original_profile == [1, 2, 3, 4, 5, 5, 5, 5, 5]
        # Greedy must never involve more qubits than the original at any
        # step, and must delay full involvement.
        assert all(g <= o for g, o in zip(greedy_profile, original_profile))
        assert greedy_profile.index(5) > original_profile.index(5)

    def test_forward_looking_beats_greedy_on_gs5(self) -> None:
        circuit = graph_state(5)
        greedy = reorder_greedy(circuit).involvement_profile()
        forward = reorder_forward_looking(circuit).involvement_profile()
        # The path-graph analogue of Fig. 8c: H and CNOT interleave so each
        # step adds at most one qubit and CNOTs execute as soon as free.
        assert forward == [1, 2, 2, 3, 3, 4, 4, 5, 5]
        assert sum(forward) <= sum(greedy)

    def test_forward_looking_interleaves_h_and_cx(self) -> None:
        ordered = reorder_forward_looking(graph_state(5))
        names = [g.name for g in ordered]
        # Not all Hadamards first any more.
        assert names[:5] != ["h"] * 5


class TestEffectiveness:
    def test_forward_looking_delays_qft(self) -> None:
        circuit = get_circuit("qft", 14)
        assert mean_live_fraction(
            reorder_forward_looking(circuit)
        ) < 0.5 * mean_live_fraction(circuit)

    def test_qaoa_is_reorder_resistant(self) -> None:
        circuit = get_circuit("qaoa", 14)
        improvement = mean_live_fraction(circuit) - mean_live_fraction(
            reorder_forward_looking(circuit)
        )
        assert improvement < 0.35

    def test_hchain_is_reorder_resistant(self) -> None:
        circuit = get_circuit("hchain", 12)
        assert mean_live_fraction(reorder_forward_looking(circuit)) > 0.5

    @pytest.mark.parametrize("family", FAMILIES)
    def test_forward_looking_never_increases_mean_involvement_much(
        self, family: str
    ) -> None:
        circuit = get_circuit(family, 12)
        original = mean_live_fraction(circuit)
        forward = mean_live_fraction(reorder_forward_looking(circuit))
        assert forward <= original + 1e-9

    @given(seed=st.integers(0, 50))
    def test_random_circuits_preserve_semantics(self, seed: int) -> None:
        rng = np.random.default_rng(seed)
        circuit = QuantumCircuit(5)
        for _ in range(25):
            kind = rng.integers(0, 3)
            if kind == 0:
                circuit.h(int(rng.integers(5)))
            elif kind == 1:
                a, b = rng.choice(5, size=2, replace=False)
                circuit.cx(int(a), int(b))
            else:
                circuit.t(int(rng.integers(5)))
        for strategy in ("greedy", "forward_looking"):
            ordered = reorder(circuit, strategy)
            np.testing.assert_allclose(
                simulate(ordered).amplitudes,
                simulate(circuit).amplitudes,
                atol=1e-10,
            )
