"""Tests for multi-GPU chunk-group assignment (paper Fig. 18)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.gates import Gate
from repro.core.multigpu import (
    GroupAssignment,
    assign_round_robin,
    per_gpu_amplitudes,
)
from repro.errors import SchedulingError


class TestFig18WalkThrough:
    def test_paper_example(self) -> None:
        # 7-qubit circuit, chunk = 2^4 amplitudes, gate on q5, two GPUs:
        # pair groups (0,2),(1,3),(4,6),(5,7); round robin assigns groups
        # 0 and 2 to GPU0, groups 1 and 3 to GPU1.
        gate = Gate("h", (5,))
        assignment = assign_round_robin(7, 4, gate, num_gpus=2)
        assert assignment.groups == ((0, 2), (1, 3), (4, 6), (5, 7))
        assert assignment.groups_of(0) == [(0, 2), (4, 6)]
        assert assignment.groups_of(1) == [(1, 3), (5, 7)]

    def test_chunks_of_flattens_stream_order(self) -> None:
        assignment = assign_round_robin(7, 4, Gate("h", (5,)), 2)
        assert assignment.chunks_of(0) == [0, 2, 4, 6]


class TestInvariants:
    @pytest.mark.parametrize("num_gpus", [1, 2, 3, 4])
    @pytest.mark.parametrize("qubit", [0, 3, 5, 7])
    def test_every_chunk_owned_once(self, num_gpus: int, qubit: int) -> None:
        assignment = assign_round_robin(8, 3, Gate("h", (qubit,)), num_gpus)
        owned = sorted(
            index for gpu in range(num_gpus) for index in assignment.chunks_of(gpu)
        )
        assert owned == list(range(32))
        assignment.validate()  # no exception

    def test_pairs_are_co_resident(self) -> None:
        assignment = assign_round_robin(8, 3, Gate("cx", (6, 7)), 3)
        for group, owner in zip(assignment.groups, assignment.owners):
            for index in group:
                assert index in assignment.chunks_of(owner)

    def test_load_balance_within_one_group(self) -> None:
        assignment = assign_round_robin(9, 4, Gate("h", (8,)), 4)
        loads = per_gpu_amplitudes(assignment, 4)
        assert max(loads) - min(loads) <= (1 << 4) * 2  # one group of 2 chunks

    def test_validate_rejects_double_ownership(self) -> None:
        bad = GroupAssignment(
            gate=Gate("h", (2,)),
            groups=((0,), (0,)),
            owners=(0, 1),
            num_gpus=2,
        )
        with pytest.raises(SchedulingError, match="assigned to GPUs"):
            bad.validate()

    def test_gpu_index_bounds(self) -> None:
        assignment = assign_round_robin(6, 2, Gate("h", (0,)), 2)
        with pytest.raises(SchedulingError):
            assignment.groups_of(5)

    def test_at_least_one_gpu(self) -> None:
        with pytest.raises(SchedulingError):
            assign_round_robin(6, 2, Gate("h", (0,)), 0)


class TestOwnershipRoundTrip:
    """Per-GPU chunk ownership partitions and reassembles exactly."""

    @pytest.mark.parametrize("num_gpus", [1, 2, 3, 4, 5])
    def test_groups_round_trip_through_owners(self, num_gpus: int) -> None:
        # Collecting every GPU's groups and re-sorting by original index
        # must reproduce the assignment's group list exactly.
        assignment = assign_round_robin(9, 4, Gate("cx", (7, 8)), num_gpus)
        regrouped = [
            group for gpu in range(num_gpus) for group in assignment.groups_of(gpu)
        ]
        assert sorted(regrouped) == sorted(assignment.groups)
        assert len(regrouped) == len(assignment.groups)

    def test_owner_is_recoverable_from_position(self) -> None:
        assignment = assign_round_robin(8, 3, Gate("h", (6,)), 3)
        for index, owner in enumerate(assignment.owners):
            assert owner == index % 3
            assert assignment.groups[index] in assignment.groups_of(owner)

    @pytest.mark.parametrize("chunk_bits", [2, 3, 4])
    def test_amplitude_conservation(self, chunk_bits: int) -> None:
        # Summed per-GPU amplitude loads must equal the full register:
        # every amplitude is updated exactly once per gate.
        n = 8
        assignment = assign_round_robin(n, chunk_bits, Gate("h", (7,)), 3)
        assert sum(per_gpu_amplitudes(assignment, chunk_bits)) == 1 << n

    def test_inside_chunk_gate_gives_singleton_groups(self) -> None:
        # A gate on within-chunk qubits needs no chunk pairing: every chunk
        # is its own group, spread round-robin.
        assignment = assign_round_robin(7, 4, Gate("h", (1,)), 2)
        assert all(len(group) == 1 for group in assignment.groups)
        owned = sorted(index for g in range(2) for index in assignment.chunks_of(g))
        assert owned == list(range(8))

    def test_two_outside_qubits_quadruple_groups(self) -> None:
        # Two outside qubits -> groups of 4 co-resident chunks.
        assignment = assign_round_robin(8, 4, Gate("cx", (6, 7)), 2)
        assert all(len(group) == 4 for group in assignment.groups)
        assignment.validate()

    def test_uneven_group_remainder_goes_to_low_gpus(self) -> None:
        # 8 singleton groups over 3 GPUs: loads 3/3/2, remainder on the
        # lowest-indexed GPUs.
        assignment = assign_round_robin(7, 4, Gate("h", (0,)), 3)
        loads = [len(assignment.groups_of(gpu)) for gpu in range(3)]
        assert loads == [3, 3, 2]
