"""Tests for multi-GPU chunk-group assignment (paper Fig. 18)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.gates import Gate
from repro.core.multigpu import (
    GroupAssignment,
    assign_round_robin,
    per_gpu_amplitudes,
)
from repro.errors import SchedulingError


class TestFig18WalkThrough:
    def test_paper_example(self) -> None:
        # 7-qubit circuit, chunk = 2^4 amplitudes, gate on q5, two GPUs:
        # pair groups (0,2),(1,3),(4,6),(5,7); round robin assigns groups
        # 0 and 2 to GPU0, groups 1 and 3 to GPU1.
        gate = Gate("h", (5,))
        assignment = assign_round_robin(7, 4, gate, num_gpus=2)
        assert assignment.groups == ((0, 2), (1, 3), (4, 6), (5, 7))
        assert assignment.groups_of(0) == [(0, 2), (4, 6)]
        assert assignment.groups_of(1) == [(1, 3), (5, 7)]

    def test_chunks_of_flattens_stream_order(self) -> None:
        assignment = assign_round_robin(7, 4, Gate("h", (5,)), 2)
        assert assignment.chunks_of(0) == [0, 2, 4, 6]


class TestInvariants:
    @pytest.mark.parametrize("num_gpus", [1, 2, 3, 4])
    @pytest.mark.parametrize("qubit", [0, 3, 5, 7])
    def test_every_chunk_owned_once(self, num_gpus: int, qubit: int) -> None:
        assignment = assign_round_robin(8, 3, Gate("h", (qubit,)), num_gpus)
        owned = sorted(
            index for gpu in range(num_gpus) for index in assignment.chunks_of(gpu)
        )
        assert owned == list(range(32))
        assignment.validate()  # no exception

    def test_pairs_are_co_resident(self) -> None:
        assignment = assign_round_robin(8, 3, Gate("cx", (6, 7)), 3)
        for group, owner in zip(assignment.groups, assignment.owners):
            for index in group:
                assert index in assignment.chunks_of(owner)

    def test_load_balance_within_one_group(self) -> None:
        assignment = assign_round_robin(9, 4, Gate("h", (8,)), 4)
        loads = per_gpu_amplitudes(assignment, 4)
        assert max(loads) - min(loads) <= (1 << 4) * 2  # one group of 2 chunks

    def test_validate_rejects_double_ownership(self) -> None:
        bad = GroupAssignment(
            gate=Gate("h", (2,)),
            groups=((0,), (0,)),
            owners=(0, 1),
            num_gpus=2,
        )
        with pytest.raises(SchedulingError, match="assigned to GPUs"):
            bad.validate()

    def test_gpu_index_bounds(self) -> None:
        assignment = assign_round_robin(6, 2, Gate("h", (0,)), 2)
        with pytest.raises(SchedulingError):
            assignment.groups_of(5)

    def test_at_least_one_gpu(self) -> None:
        with pytest.raises(SchedulingError):
            assign_round_robin(6, 2, Gate("h", (0,)), 0)


class TestOwnershipRoundTrip:
    """Per-GPU chunk ownership partitions and reassembles exactly."""

    @pytest.mark.parametrize("num_gpus", [1, 2, 3, 4, 5])
    def test_groups_round_trip_through_owners(self, num_gpus: int) -> None:
        # Collecting every GPU's groups and re-sorting by original index
        # must reproduce the assignment's group list exactly.
        assignment = assign_round_robin(9, 4, Gate("cx", (7, 8)), num_gpus)
        regrouped = [
            group for gpu in range(num_gpus) for group in assignment.groups_of(gpu)
        ]
        assert sorted(regrouped) == sorted(assignment.groups)
        assert len(regrouped) == len(assignment.groups)

    def test_owner_is_recoverable_from_position(self) -> None:
        assignment = assign_round_robin(8, 3, Gate("h", (6,)), 3)
        for index, owner in enumerate(assignment.owners):
            assert owner == index % 3
            assert assignment.groups[index] in assignment.groups_of(owner)

    @pytest.mark.parametrize("chunk_bits", [2, 3, 4])
    def test_amplitude_conservation(self, chunk_bits: int) -> None:
        # Summed per-GPU amplitude loads must equal the full register:
        # every amplitude is updated exactly once per gate.
        n = 8
        assignment = assign_round_robin(n, chunk_bits, Gate("h", (7,)), 3)
        assert sum(per_gpu_amplitudes(assignment, chunk_bits)) == 1 << n

    def test_inside_chunk_gate_gives_singleton_groups(self) -> None:
        # A gate on within-chunk qubits needs no chunk pairing: every chunk
        # is its own group, spread round-robin.
        assignment = assign_round_robin(7, 4, Gate("h", (1,)), 2)
        assert all(len(group) == 1 for group in assignment.groups)
        owned = sorted(index for g in range(2) for index in assignment.chunks_of(g))
        assert owned == list(range(8))

    def test_two_outside_qubits_quadruple_groups(self) -> None:
        # Two outside qubits -> groups of 4 co-resident chunks.
        assignment = assign_round_robin(8, 4, Gate("cx", (6, 7)), 2)
        assert all(len(group) == 4 for group in assignment.groups)
        assignment.validate()

    def test_uneven_group_remainder_goes_to_low_gpus(self) -> None:
        # 8 singleton groups over 3 GPUs: loads 3/3/2, remainder on the
        # lowest-indexed GPUs.
        assignment = assign_round_robin(7, 4, Gate("h", (0,)), 3)
        loads = [len(assignment.groups_of(gpu)) for gpu in range(3)]
        assert loads == [3, 3, 2]


class TestFleetScale:
    """Invariants across the fleet-observatory device range (2-64 GPUs)."""

    FLEET_COUNTS = [2, 3, 4, 6, 8, 16, 32, 64]

    @pytest.mark.parametrize("num_gpus", FLEET_COUNTS)
    def test_partition_is_exact_at_every_fleet_size(self, num_gpus: int) -> None:
        # 10 qubits, chunk = 2^4 -> 64 chunks; an outside-qubit gate pairs
        # them into 32 groups.  Whatever the device count, the per-GPU
        # chunk lists partition [0, 64) with no gaps or overlaps.
        assignment = assign_round_robin(10, 4, Gate("h", (9,)), num_gpus)
        owned = sorted(
            index
            for gpu in range(num_gpus)
            for index in assignment.chunks_of(gpu)
        )
        assert owned == list(range(64))
        assignment.validate()

    @pytest.mark.parametrize("num_gpus", FLEET_COUNTS)
    def test_round_robin_balance_within_one_group(self, num_gpus: int) -> None:
        # Round robin never lets two GPUs differ by more than one group,
        # even when the group count does not divide evenly.
        assignment = assign_round_robin(10, 4, Gate("h", (9,)), num_gpus)
        loads = [len(assignment.groups_of(gpu)) for gpu in range(num_gpus)]
        assert max(loads) - min(loads) <= 1
        assert sum(loads) == len(assignment.groups)

    def test_more_gpus_than_groups_leaves_tail_idle(self) -> None:
        # 7 qubits / chunk 2^4 / outside gate -> 4 groups; on a 64-GPU
        # fleet only the first 4 devices own work, the rest stream nothing.
        assignment = assign_round_robin(7, 4, Gate("h", (6,)), 64)
        busy = [g for g in range(64) if assignment.groups_of(g)]
        assert busy == [0, 1, 2, 3]
        assert all(assignment.chunks_of(g) == [] for g in range(4, 64))
        assignment.validate()

    @pytest.mark.parametrize("num_gpus", [2, 8, 64])
    def test_stream_order_matches_group_order(self, num_gpus: int) -> None:
        # chunks_of streams groups in assignment order: each GPU's list is
        # the concatenation of its groups, and group starts are increasing.
        assignment = assign_round_robin(10, 4, Gate("cx", (8, 9)), num_gpus)
        for gpu in range(num_gpus):
            groups = assignment.groups_of(gpu)
            flat = [index for group in groups for index in group]
            assert assignment.chunks_of(gpu) == flat
            starts = [group[0] for group in groups]
            assert starts == sorted(starts)

    @pytest.mark.parametrize("num_gpus", FLEET_COUNTS)
    def test_co_residency_at_every_fleet_size(self, num_gpus: int) -> None:
        # Paired chunks always land on the same device: this is what makes
        # the schedule free of GPU-to-GPU traffic at any fleet size.
        assignment = assign_round_robin(10, 4, Gate("cx", (8, 9)), num_gpus)
        owner_of = {
            index: owner
            for group, owner in zip(assignment.groups, assignment.owners)
            for index in group
        }
        for group in assignment.groups:
            owners = {owner_of[index] for index in group}
            assert len(owners) == 1

    @pytest.mark.parametrize("num_gpus", FLEET_COUNTS)
    def test_validate_catches_split_pair(self, num_gpus: int) -> None:
        # Manually splitting one pair across devices must always be caught.
        good = assign_round_robin(10, 4, Gate("h", (9,)), num_gpus)
        split = tuple((index,) for group in good.groups for index in group)
        owners = tuple(i % num_gpus for i in range(len(split)))
        # Duplicate the first chunk under a second owner.
        bad = GroupAssignment(
            gate=good.gate,
            groups=split + ((split[0][0],),),
            owners=owners + (((owners[0] + 1) % num_gpus),),
            num_gpus=num_gpus,
        )
        with pytest.raises(SchedulingError, match="assigned to GPUs"):
            bad.validate()
