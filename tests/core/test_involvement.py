"""Tests for the involvement bitmask tracker."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.core.involvement import (
    InvolvementTracker,
    involvement_trace,
    live_fraction_trace,
    qubit_mask,
)
from repro.errors import SimulationError


class TestQubitMask:
    def test_values(self) -> None:
        assert qubit_mask(()) == 0
        assert qubit_mask((0,)) == 1
        assert qubit_mask((1, 3)) == 0b1010
        assert qubit_mask((2, 2)) == 0b100


class TestTracker:
    def test_initially_uninvolved(self) -> None:
        tracker = InvolvementTracker(4)
        assert tracker.mask == 0
        assert tracker.involved_count == 0
        assert tracker.live_amplitudes == 1
        assert not tracker.is_involved(0)

    def test_involve_accumulates(self) -> None:
        tracker = InvolvementTracker(4)
        tracker.involve(Gate("h", (1,)))
        tracker.involve(Gate("cx", (1, 3)))
        assert tracker.mask == 0b1010
        assert tracker.involved_count == 2
        assert tracker.live_amplitudes == 4
        assert tracker.is_involved(3) and not tracker.is_involved(0)

    def test_live_amplitudes_with_peeks_without_mutating(self) -> None:
        tracker = InvolvementTracker(4)
        tracker.involve(Gate("h", (0,)))
        assert tracker.live_amplitudes_with(Gate("cx", (0, 2))) == 4
        assert tracker.mask == 0b0001  # unchanged

    def test_gate_beyond_register_rejected(self) -> None:
        tracker = InvolvementTracker(2)
        with pytest.raises(SimulationError):
            tracker.involve(Gate("h", (2,)))

    def test_mask_validation(self) -> None:
        with pytest.raises(SimulationError):
            InvolvementTracker(2, mask=0b100)
        with pytest.raises(SimulationError):
            InvolvementTracker(0)


class TestDiagonalAware:
    def test_diagonal_gate_does_not_involve(self) -> None:
        tracker = InvolvementTracker(4)
        tracker.involve(Gate("cp", (0, 2), (0.5,)), diagonal_aware=True)
        assert tracker.mask == 0

    def test_non_diagonal_gate_still_involves(self) -> None:
        tracker = InvolvementTracker(4)
        tracker.involve(Gate("h", (1,)), diagonal_aware=True)
        assert tracker.mask == 0b0010

    def test_paper_semantics_by_default(self) -> None:
        tracker = InvolvementTracker(4)
        tracker.involve(Gate("cp", (0, 2), (0.5,)))
        assert tracker.mask == 0b0101

    def test_live_with_diagonal_gate_skips_union(self) -> None:
        tracker = InvolvementTracker(4)
        tracker.involve(Gate("h", (0,)))
        diagonal = Gate("cp", (0, 3), (0.3,))
        assert tracker.live_amplitudes_with(diagonal, diagonal_aware=True) == 2
        assert tracker.live_amplitudes_with(diagonal) == 4

    def test_diagonal_aware_mask_is_subset(self) -> None:
        from repro.circuits.library import get_circuit

        circuit = get_circuit("qft", 10)
        paper = InvolvementTracker(10)
        aware = InvolvementTracker(10)
        for gate in circuit:
            paper.involve(gate)
            aware.involve(gate, diagonal_aware=True)
            assert aware.mask & paper.mask == aware.mask

    def test_out_of_range_checked_even_for_diagonal(self) -> None:
        tracker = InvolvementTracker(2)
        with pytest.raises(SimulationError):
            tracker.involve(Gate("rz", (5,), (0.1,)), diagonal_aware=True)


class TestDynamicChunkBits:
    def test_algorithm1_example(self) -> None:
        # Paper: involvement 00000011 on an 8-qubit circuit -> chunkSize 2.
        tracker = InvolvementTracker(8, mask=0b00000011)
        assert tracker.dynamic_chunk_bits(max_chunk_bits=5) == 2

    def test_scattered_involvement_gives_minimum(self) -> None:
        tracker = InvolvementTracker(8, mask=0b10100000)
        assert tracker.dynamic_chunk_bits(5) == 1

    def test_capped_at_maximum(self) -> None:
        tracker = InvolvementTracker(8, mask=0b11111111)
        assert tracker.dynamic_chunk_bits(3) == 3

    def test_zero_mask_gives_minimum(self) -> None:
        assert InvolvementTracker(8).dynamic_chunk_bits(5) == 1


class TestTraces:
    def test_involvement_trace_monotone_in_popcount(self) -> None:
        circuit = QuantumCircuit(4).h(2).cx(2, 0).h(3).h(1)
        trace = involvement_trace(circuit)
        assert trace == [0b0100, 0b0101, 0b1101, 0b1111]
        counts = [m.bit_count() for m in trace]
        assert counts == sorted(counts)

    def test_live_fraction_trace(self) -> None:
        circuit = QuantumCircuit(2).h(0).h(1)
        assert live_fraction_trace(circuit) == [0.5, 1.0]

    @given(seed=st.integers(0, 100))
    def test_trace_superset_property(self, seed: int) -> None:
        import numpy as np

        rng = np.random.default_rng(seed)
        circuit = QuantumCircuit(5)
        for _ in range(20):
            circuit.h(int(rng.integers(5)))
        trace = involvement_trace(circuit)
        for earlier, later in zip(trace, trace[1:]):
            assert earlier & later == earlier  # masks only grow
