"""Property-based invariants of the timed executor."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.library import FAMILIES, get_circuit
from repro.core.executor import TimedExecutor
from repro.core.versions import (
    ALL_VERSIONS,
    NAIVE,
    OVERLAP,
    PRUNING,
    QGPU,
    VersionConfig,
)
from repro.hardware.machine import Machine
from repro.hardware.specs import MULTI_V100_MACHINE, PAPER_MACHINE

EXECUTOR = TimedExecutor(Machine(PAPER_MACHINE))

family_strategy = st.sampled_from(sorted(FAMILIES))
width_strategy = st.sampled_from([30, 31, 32])


@settings(max_examples=25, deadline=None)
@given(family=family_strategy, width=width_strategy)
def test_streaming_bytes_are_symmetric(family: str, width: int) -> None:
    circuit = get_circuit(family, width)
    for version in (NAIVE, OVERLAP, PRUNING):
        result = EXECUTOR.execute(circuit, version)
        assert result.bytes_h2d == pytest.approx(result.bytes_d2h)


@settings(max_examples=25, deadline=None)
@given(family=family_strategy, width=width_strategy)
def test_every_version_yields_positive_time(family: str, width: int) -> None:
    circuit = get_circuit(family, width)
    for version in ALL_VERSIONS:
        result = EXECUTOR.execute(circuit, version)
        assert result.total_seconds > 0
        assert result.total_seconds + 1e-12 >= result.gpu_seconds


@settings(max_examples=15, deadline=None)
@given(family=family_strategy, width=width_strategy)
def test_pruning_never_hurts(family: str, width: int) -> None:
    circuit = get_circuit(family, width)
    with_pruning = EXECUTOR.execute(circuit, PRUNING).total_seconds
    without = EXECUTOR.execute(circuit, OVERLAP).total_seconds
    assert with_pruning <= without * 1.001


@settings(max_examples=15, deadline=None)
@given(
    family=family_strategy,
    ratios=st.tuples(st.floats(0.1, 1.0), st.floats(0.1, 1.0)),
)
def test_better_ratio_never_slower(family: str, ratios: tuple[float, float]) -> None:
    low, high = sorted(ratios)
    circuit = get_circuit(family, 31)
    fast = EXECUTOR.execute(circuit, QGPU, compression_ratio=low).total_seconds
    slow = EXECUTOR.execute(circuit, QGPU, compression_ratio=high).total_seconds
    assert fast <= slow * 1.001


@settings(max_examples=10, deadline=None)
@given(family=family_strategy, counts=st.tuples(st.integers(1, 4), st.integers(1, 4)))
def test_more_gpus_never_slower(family: str, counts: tuple[int, int]) -> None:
    few, many = sorted(counts)
    circuit = get_circuit(family, 31)
    results = []
    for count in (few, many):
        machine = Machine(MULTI_V100_MACHINE.with_gpu_count(count))
        results.append(
            TimedExecutor(machine).execute(circuit, QGPU, 0.6).total_seconds
        )
    assert results[1] <= results[0] * 1.001


@settings(max_examples=10, deadline=None)
@given(
    family=family_strategy,
    diagonal_aware=st.booleans(),
    residency=st.booleans(),
)
def test_extension_flags_never_hurt(
    family: str, diagonal_aware: bool, residency: bool
) -> None:
    circuit = get_circuit(family, 31)
    base = EXECUTOR.execute(circuit, PRUNING).total_seconds
    extended = VersionConfig(
        "ext", dynamic_allocation=True, overlap=True, pruning=True,
        diagonal_aware_pruning=diagonal_aware, live_residency=residency,
    )
    assert EXECUTOR.execute(circuit, extended).total_seconds <= base * 1.001
