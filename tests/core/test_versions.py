"""Tests for the version configurations."""

from __future__ import annotations

import pytest

from repro.core.versions import (
    ALL_VERSIONS,
    BASELINE,
    NAIVE,
    OVERLAP,
    PRUNING,
    QGPU,
    REORDER,
    VERSIONS_BY_NAME,
    VersionConfig,
)
from repro.errors import SimulationError


class TestPresets:
    def test_six_versions_in_paper_order(self) -> None:
        assert [v.name for v in ALL_VERSIONS] == [
            "Baseline", "Naive", "Overlap", "Pruning", "Reorder", "Q-GPU",
        ]

    def test_features_stack_monotonically(self) -> None:
        # Each version enables a superset of the previous version's features.
        def feature_set(v: VersionConfig) -> set[str]:
            features = set()
            if v.dynamic_allocation:
                features.add("dynamic")
            if v.overlap:
                features.add("overlap")
            if v.pruning:
                features.add("pruning")
            if v.reorder_strategy != "original":
                features.add("reorder")
            if v.compression:
                features.add("compression")
            return features

        for earlier, later in zip(ALL_VERSIONS, ALL_VERSIONS[1:]):
            assert feature_set(earlier) <= feature_set(later)

    def test_baseline_is_static(self) -> None:
        assert not BASELINE.dynamic_allocation
        assert not BASELINE.pruning

    def test_qgpu_has_everything(self) -> None:
        assert QGPU.dynamic_allocation and QGPU.overlap and QGPU.pruning
        assert QGPU.reorder_strategy == "forward_looking"
        assert QGPU.compression

    def test_lookup_by_name(self) -> None:
        assert VERSIONS_BY_NAME["Overlap"] is OVERLAP
        assert VERSIONS_BY_NAME["Pruning"] is PRUNING
        assert VERSIONS_BY_NAME["Naive"] is NAIVE
        assert VERSIONS_BY_NAME["Reorder"] is REORDER

    def test_live_residency_defaults_off(self) -> None:
        # The paper's design streams every gate; residency is our ablation.
        assert all(not v.live_residency for v in ALL_VERSIONS)


class TestValidation:
    def test_overlap_requires_dynamic(self) -> None:
        with pytest.raises(SimulationError):
            VersionConfig("bad", dynamic_allocation=False, overlap=True, pruning=False)

    def test_unknown_reorder_strategy(self) -> None:
        with pytest.raises(SimulationError):
            VersionConfig(
                "bad", dynamic_allocation=True, overlap=True, pruning=True,
                reorder_strategy="mystery",
            )

    def test_custom_ablation_config(self) -> None:
        config = VersionConfig(
            "ablate", dynamic_allocation=True, overlap=True, pruning=True,
            live_residency=True,
        )
        assert config.live_residency
