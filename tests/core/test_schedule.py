"""Tests for explicit stream schedules (DES cross-validation)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.schedule import GateStreamPlan, build_stream_timeline, stream_makespan
from repro.hardware.pipeline import (
    StageTimes,
    double_buffered_roundtrip,
    serial_roundtrip,
)

stage_floats = st.floats(0.01, 10.0)


def make_plans(seed_times: list[tuple[int, float, float, float]]) -> list[GateStreamPlan]:
    return [
        GateStreamPlan(f"g{k}", batches, StageTimes(h, c, d))
        for k, (batches, h, c, d) in enumerate(seed_times)
    ]


class TestCrossValidation:
    @given(
        gates=st.lists(
            st.tuples(st.integers(1, 6), stage_floats, stage_floats, stage_floats),
            min_size=1,
            max_size=5,
        )
    )
    def test_drained_overlap_equals_sum_of_closed_forms(self, gates) -> None:
        plans = make_plans(gates)
        des = stream_makespan(plans, overlap=True, drain_between_gates=True)
        closed = sum(
            double_buffered_roundtrip(p.num_batches, p.stages) for p in plans
        )
        assert des.makespan == pytest.approx(closed, rel=1e-9)

    @given(
        gates=st.lists(
            st.tuples(st.integers(1, 6), stage_floats, stage_floats, stage_floats),
            min_size=1,
            max_size=5,
        )
    )
    def test_naive_equals_sum_of_serial_forms(self, gates) -> None:
        plans = make_plans(gates)
        des = stream_makespan(plans, overlap=False)
        closed = sum(serial_roundtrip(p.num_batches, p.stages) for p in plans)
        assert des.makespan == pytest.approx(closed, rel=1e-9)

    @given(
        gates=st.lists(
            st.tuples(st.integers(1, 5), stage_floats, stage_floats, stage_floats),
            min_size=2,
            max_size=5,
        )
    )
    def test_continuous_streaming_never_slower_than_drained(self, gates) -> None:
        plans = make_plans(gates)
        drained = stream_makespan(plans, drain_between_gates=True).makespan
        continuous = stream_makespan(plans, drain_between_gates=False).makespan
        assert continuous <= drained + 1e-9


class TestStructure:
    def test_task_count(self) -> None:
        plans = make_plans([(3, 1, 1, 1), (2, 1, 1, 1)])
        timeline = build_stream_timeline(plans)
        assert len(timeline) == 3 * (3 + 2)

    def test_engine_utilization_reported(self) -> None:
        plans = make_plans([(4, 2.0, 0.5, 2.0)])
        result = stream_makespan(plans)
        assert result.busy["h2d"] == pytest.approx(8.0)
        assert result.busy["gpu"] == pytest.approx(2.0)
        assert 0 < result.utilization("h2d") <= 1.0
