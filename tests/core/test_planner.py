"""Tests for the execution planner."""

from __future__ import annotations

import pytest

from repro.circuits.library import get_circuit
from repro.core.planner import ExecutionPlan, plan_execution
from repro.errors import SimulationError
from repro.hardware.specs import PAPER_MACHINE, V100_MACHINE


class TestPlanning:
    def test_entries_ranked_fastest_first(self) -> None:
        plan = plan_execution(get_circuit("qft", 32))
        times = [entry.seconds for entry in plan.entries]
        assert times == sorted(times)
        assert plan.best.seconds == times[0]

    def test_qgpu_wins_at_scale_on_pruneable_circuits(self) -> None:
        plan = plan_execution(get_circuit("iqp", 33))
        assert plan.best.label.startswith("Q-GPU")

    def test_cpu_candidate_present(self) -> None:
        plan = plan_execution(get_circuit("gs", 31))
        labels = {entry.label for entry in plan.entries}
        assert "CPU-OpenMP" in labels
        assert "Baseline" in labels

    def test_pruning_extensions_top_qft(self) -> None:
        plan = plan_execution(get_circuit("qft", 32))
        assert plan.best.label in ("Q-GPU+diag", "Q-GPU+basis")
        assert plan.speedup_over("Baseline") > 10

    def test_extensions_can_be_excluded(self) -> None:
        plan = plan_execution(get_circuit("qft", 31), include_extensions=False)
        labels = {entry.label for entry in plan.entries}
        assert "Q-GPU+diag" not in labels
        assert "Q-GPU+basis" not in labels

    def test_clifford_flagged(self) -> None:
        assert plan_execution(get_circuit("gs", 30)).clifford
        assert not plan_execution(get_circuit("qft", 30)).clifford

    def test_render_mentions_best(self) -> None:
        plan = plan_execution(get_circuit("gs", 30))
        text = plan.render()
        assert "->" in text and plan.best.label in text
        assert "stabilizer engine" in text

    def test_speedup_over_unknown_label(self) -> None:
        plan = plan_execution(get_circuit("gs", 30))
        with pytest.raises(SimulationError):
            plan.speedup_over("nonexistent")

    def test_oversized_circuit_rejected(self) -> None:
        with pytest.raises(SimulationError, match="fits no engine"):
            plan_execution(get_circuit("gs", 34), machine=V100_MACHINE)
