"""Tests for Algorithm 1 (zero state-amplitude pruning).

The decisive test: Algorithm 1's pruned chunks must actually be all-zero in
a real simulation at every step of every benchmark circuit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.library import FAMILIES, get_circuit
from repro.core.involvement import InvolvementTracker
from repro.core.pruning import (
    chunk_is_pruned,
    iter_live_chunks,
    live_amplitude_count,
    live_chunk_count,
)
from repro.errors import SimulationError
from repro.statevector.chunks import ChunkedStateVector


class TestClosedForm:
    @given(
        num_qubits=st.integers(2, 12),
        chunk_bits=st.integers(1, 6),
        involvement=st.integers(0, (1 << 12) - 1),
    )
    def test_count_matches_enumeration(
        self, num_qubits: int, chunk_bits: int, involvement: int
    ) -> None:
        chunk_bits = min(chunk_bits, num_qubits)
        involvement &= (1 << num_qubits) - 1
        enumerated = list(iter_live_chunks(num_qubits, chunk_bits, involvement))
        assert len(enumerated) == live_chunk_count(num_qubits, chunk_bits, involvement)

    @given(
        num_qubits=st.integers(2, 12),
        chunk_bits=st.integers(1, 6),
        involvement=st.integers(0, (1 << 12) - 1),
    )
    def test_enumeration_matches_membership_test(
        self, num_qubits: int, chunk_bits: int, involvement: int
    ) -> None:
        chunk_bits = min(chunk_bits, num_qubits)
        involvement &= (1 << num_qubits) - 1
        live = set(iter_live_chunks(num_qubits, chunk_bits, involvement))
        for chunk in range(1 << (num_qubits - chunk_bits)):
            assert (chunk in live) == (
                not chunk_is_pruned(chunk, chunk_bits, involvement)
            )

    def test_no_involvement_keeps_only_chunk_zero(self) -> None:
        assert list(iter_live_chunks(6, 2, 0)) == [0]

    def test_full_involvement_keeps_everything(self) -> None:
        assert list(iter_live_chunks(6, 2, 0b111111)) == list(range(16))

    def test_half_involvement_halves_chunks(self) -> None:
        # One uninvolved qubit above the chunk boundary halves live chunks.
        assert live_chunk_count(6, 2, 0b101111) == 8

    def test_live_amplitude_count(self) -> None:
        assert live_amplitude_count(6, 0) == 1
        assert live_amplitude_count(6, 0b101) == 4

    def test_validation(self) -> None:
        with pytest.raises(SimulationError):
            live_chunk_count(4, 0, 0)
        with pytest.raises(SimulationError):
            live_amplitude_count(2, 0b100)
        with pytest.raises(SimulationError):
            list(iter_live_chunks(4, 5, 0))


class TestAgainstRealStates:
    """Pruned chunks must hold exactly zero amplitudes in real simulations."""

    @pytest.mark.parametrize("family", FAMILIES)
    def test_pruned_chunks_are_zero_throughout(self, family: str) -> None:
        num_qubits, chunk_bits = 8, 3
        circuit = get_circuit(family, num_qubits)
        state = ChunkedStateVector(num_qubits, chunk_bits)
        tracker = InvolvementTracker(num_qubits)
        for gate in circuit:
            state.apply(gate)
            tracker.involve(gate)
            live = set(iter_live_chunks(num_qubits, chunk_bits, tracker.mask))
            for chunk in range(state.num_chunks):
                if chunk not in live:
                    assert state.chunk_is_zero(chunk), (
                        f"{family}: chunk {chunk} pruned but non-zero "
                        f"(involvement {tracker.mask:b})"
                    )

    def test_live_amplitude_bound_is_tight_for_ghz(self) -> None:
        # GHZ involves all qubits; every amplitude can be non-zero even
        # though only 2 are - the bound is an upper bound, never a lie.
        from repro.statevector.state import simulate
        from repro.circuits.circuit import QuantumCircuit

        circuit = QuantumCircuit(4).h(0)
        for q in range(3):
            circuit.cx(q, q + 1)
        state = simulate(circuit)
        nonzero = int(np.count_nonzero(state.amplitudes))
        assert nonzero <= live_amplitude_count(4, 0b1111)
