"""Tests for the basis-tracking pruning extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.circuits.library import FAMILIES, get_circuit
from repro.core.basis_tracking import BasisTracker, QubitState
from repro.core.executor import TimedExecutor
from repro.core.involvement import InvolvementTracker
from repro.core.versions import PRUNING, VersionConfig
from repro.errors import SimulationError
from repro.hardware.machine import Machine
from repro.hardware.specs import PAPER_MACHINE
from repro.statevector.chunks import ChunkedStateVector

BASIS_PRUNING = VersionConfig(
    "Pruning+basis", dynamic_allocation=True, overlap=True, pruning=True,
    basis_tracking_pruning=True,
)


class TestStateRules:
    def test_initially_all_fixed_zero(self) -> None:
        tracker = BasisTracker(3)
        assert tracker.live_amplitudes == 1
        assert tracker.fixed_masks() == (0b111, 0b000)

    def test_x_flips_without_freeing(self) -> None:
        tracker = BasisTracker(2)
        tracker.observe(Gate("x", (1,)))
        assert tracker.live_amplitudes == 1
        assert tracker.fixed_masks() == (0b11, 0b10)
        tracker.observe(Gate("x", (1,)))
        assert tracker.fixed_masks() == (0b11, 0b00)

    def test_h_frees(self) -> None:
        tracker = BasisTracker(2)
        tracker.observe(Gate("h", (0,)))
        assert tracker.states[0] is QubitState.FREE
        assert tracker.live_amplitudes == 2

    def test_diagonal_gates_change_nothing(self) -> None:
        tracker = BasisTracker(3)
        tracker.observe(Gate("cp", (0, 2), (0.4,)))
        tracker.observe(Gate("rz", (1,), (0.2,)))
        assert tracker.live_amplitudes == 1

    def test_cx_with_fixed_zero_control_is_identity(self) -> None:
        tracker = BasisTracker(2)
        tracker.observe(Gate("cx", (0, 1)))
        assert tracker.live_amplitudes == 1

    def test_cx_with_fixed_one_control_flips_target(self) -> None:
        tracker = BasisTracker(2)
        tracker.observe(Gate("x", (0,)))
        tracker.observe(Gate("cx", (0, 1)))
        assert tracker.fixed_masks() == (0b11, 0b11)

    def test_cx_with_free_control_frees_target(self) -> None:
        tracker = BasisTracker(2)
        tracker.observe(Gate("h", (0,)))
        tracker.observe(Gate("cx", (0, 1)))
        assert tracker.live_amplitudes == 4

    def test_ccx_rules(self) -> None:
        tracker = BasisTracker(3)
        tracker.observe(Gate("ccx", (0, 1, 2)))  # both controls fixed-0
        assert tracker.live_amplitudes == 1
        tracker.observe(Gate("x", (0,)))
        tracker.observe(Gate("x", (1,)))
        tracker.observe(Gate("ccx", (0, 1, 2)))  # both controls fixed-1
        assert tracker.fixed_masks()[1] == 0b111

    def test_swap_exchanges_knowledge(self) -> None:
        tracker = BasisTracker(2)
        tracker.observe(Gate("x", (0,)))
        tracker.observe(Gate("swap", (0, 1)))
        assert tracker.fixed_masks() == (0b11, 0b10)

    def test_flip_touches_both_cosets(self) -> None:
        tracker = BasisTracker(3)
        assert tracker.live_amplitudes_with(Gate("x", (1,))) == 2

    def test_out_of_range_rejected(self) -> None:
        with pytest.raises(SimulationError):
            BasisTracker(2).observe(Gate("h", (2,)))


class TestSoundness:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_pruned_chunks_are_zero_throughout(self, family: str) -> None:
        n, chunk_bits = 9, 3
        circuit = get_circuit(family, n)
        state = ChunkedStateVector(n, chunk_bits)
        tracker = BasisTracker(n)
        for gate in circuit:
            state.apply(gate)
            tracker.observe(gate)
            for chunk in range(state.num_chunks):
                if tracker.chunk_is_pruned(chunk, chunk_bits):
                    assert state.chunk_is_zero(chunk), (family, gate)

    @given(seed=st.integers(0, 60))
    def test_random_circuits_sound(self, seed: int) -> None:
        rng = np.random.default_rng(seed)
        n, chunk_bits = 6, 2
        circuit = QuantumCircuit(n)
        for _ in range(30):
            kind = rng.integers(0, 6)
            if kind == 0:
                circuit.h(int(rng.integers(n)))
            elif kind == 1:
                circuit.x(int(rng.integers(n)))
            elif kind == 2:
                circuit.rz(0.3, int(rng.integers(n)))
            elif kind == 3:
                a, b = rng.choice(n, size=2, replace=False)
                circuit.cx(int(a), int(b))
            elif kind == 4:
                a, b = rng.choice(n, size=2, replace=False)
                circuit.swap(int(a), int(b))
            else:
                a, b, c = rng.choice(n, size=3, replace=False)
                circuit.ccx(int(a), int(b), int(c))
        state = ChunkedStateVector(n, chunk_bits)
        tracker = BasisTracker(n)
        for gate in circuit:
            state.apply(gate)
            tracker.observe(gate)
            for chunk in range(state.num_chunks):
                if tracker.chunk_is_pruned(chunk, chunk_bits):
                    assert state.chunk_is_zero(chunk)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_never_looser_than_algorithm1(self, family: str) -> None:
        circuit = get_circuit(family, 12)
        basis = BasisTracker(12)
        algorithm1 = InvolvementTracker(12)
        for gate in circuit:
            basis.observe(gate)
            algorithm1.involve(gate)
            assert basis.live_amplitudes <= algorithm1.live_amplitudes


class TestFunctionalIntegration:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_functional_run_bit_identical(self, family: str) -> None:
        from repro.core.simulator import QGpuSimulator
        from repro.statevector.state import simulate

        circuit = get_circuit(family, 9)
        result = QGpuSimulator(version=BASIS_PRUNING, chunk_bits=4).run(circuit)
        np.testing.assert_allclose(
            result.amplitudes, simulate(circuit).amplitudes, atol=1e-10
        )

    def test_functional_prunes_at_least_as_much(self) -> None:
        from repro.core.simulator import QGpuSimulator

        circuit = get_circuit("hchain", 10)
        paper = QGpuSimulator(version=PRUNING, chunk_bits=4).run(circuit)
        basis = QGpuSimulator(version=BASIS_PRUNING, chunk_bits=4).run(circuit)
        assert basis.chunk_updates_skipped >= paper.chunk_updates_skipped


class TestExecutorIntegration:
    def test_basis_tracking_never_slower(self) -> None:
        executor = TimedExecutor(Machine(PAPER_MACHINE))
        for family in ("hchain", "qft", "bv", "qaoa"):
            circuit = get_circuit(family, 31)
            paper = executor.execute(circuit, PRUNING).total_seconds
            basis = executor.execute(circuit, BASIS_PRUNING).total_seconds
            assert basis <= paper * 1.001, family

    def test_hchain_gains_from_fixed_bit_tracking(self) -> None:
        executor = TimedExecutor(Machine(PAPER_MACHINE))
        circuit = get_circuit("hchain", 31)
        paper = executor.execute(circuit, PRUNING).total_seconds
        basis = executor.execute(circuit, BASIS_PRUNING).total_seconds
        assert basis < 0.95 * paper
