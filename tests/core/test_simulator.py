"""Tests for the QGpuSimulator facade.

The headline correctness claim: the full Q-GPU pipeline (reordering +
chunking + pruning) produces bit-identical final states to a plain dense
simulation, for every benchmark family and every version.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import FAMILIES, get_circuit
from repro.core.simulator import QGpuSimulator, circuit_family
from repro.core.versions import ALL_VERSIONS, BASELINE, PRUNING, QGPU, REORDER
from repro.errors import SimulationError
from repro.hardware.specs import PAPER_MACHINE, V100_MACHINE
from repro.statevector.state import simulate


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("version", ALL_VERSIONS, ids=lambda v: v.name)
    def test_every_family_every_version_matches_dense(
        self, family: str, version
    ) -> None:
        circuit = get_circuit(family, 9)
        reference = simulate(circuit).amplitudes
        result = QGpuSimulator(version=version, chunk_bits=4).run(circuit)
        np.testing.assert_allclose(result.amplitudes, reference, atol=1e-10)

    def test_default_chunk_bits_choice(self) -> None:
        circuit = get_circuit("gs", 8)
        result = QGpuSimulator(version=QGPU).run(circuit)
        np.testing.assert_allclose(
            result.amplitudes, simulate(circuit).amplitudes, atol=1e-10
        )

    def test_chunk_bits_wider_than_register_rejected(self) -> None:
        with pytest.raises(SimulationError):
            QGpuSimulator(version=QGPU, chunk_bits=10).run(
                QuantumCircuit(4).h(0)
            )


class TestPruningStatistics:
    def test_iqp_prunes_most(self) -> None:
        fractions = {}
        for family in ("iqp", "qft", "qaoa"):
            circuit = get_circuit(family, 10)
            result = QGpuSimulator(version=PRUNING, chunk_bits=4).run(circuit)
            fractions[family] = result.pruned_fraction
        assert fractions["iqp"] > fractions["qaoa"]
        assert fractions["iqp"] > 0.5

    def test_reorder_increases_pruning_for_gs(self) -> None:
        circuit = get_circuit("gs", 10)
        without = QGpuSimulator(version=PRUNING, chunk_bits=4).run(circuit)
        with_reorder = QGpuSimulator(version=REORDER, chunk_bits=4).run(circuit)
        assert with_reorder.pruned_fraction >= without.pruned_fraction

    def test_baseline_prunes_nothing(self) -> None:
        circuit = get_circuit("gs", 8)
        result = QGpuSimulator(version=BASELINE, chunk_bits=4).run(circuit)
        assert result.chunk_updates_skipped == 0
        assert result.pruned_fraction == 0.0

    def test_counters_consistent(self) -> None:
        circuit = get_circuit("bv", 9)
        result = QGpuSimulator(version=QGPU, chunk_bits=4).run(circuit)
        assert 0 <= result.chunk_updates_skipped <= result.chunk_updates_total
        assert result.circuit_name == "bv_9"
        assert result.version == "Q-GPU"


class TestTimedFacade:
    def test_estimate_uses_family_profile(self) -> None:
        circuit = get_circuit("qaoa", 30)
        sim = QGpuSimulator(version=QGPU)
        automatic = sim.estimate(circuit)
        incompressible = sim.estimate(circuit, compression_ratio=1.0)
        assert automatic.total_seconds <= incompressible.total_seconds

    def test_estimate_respects_machine(self) -> None:
        circuit = get_circuit("qft", 30)
        p100 = QGpuSimulator(machine=PAPER_MACHINE, version=QGPU).estimate(circuit)
        v100 = QGpuSimulator(machine=V100_MACHINE, version=QGPU).estimate(circuit)
        assert p100.machine != v100.machine

    def test_circuit_family_parser(self) -> None:
        assert circuit_family(get_circuit("qft", 30)) == "qft"
        assert circuit_family(QuantumCircuit(2, name="custom")) == "custom"
