"""Tests for the multi-device DES executor (fleet trace lanes + transfers)."""

from __future__ import annotations

import pytest

from repro.circuits.library import get_circuit
from repro.core.detailed import DetailedExecutor
from repro.core.versions import NAIVE, OVERLAP
from repro.hardware.machine import Machine
from repro.hardware.specs import MULTI_V100_MACHINE, PAPER_MACHINE
from repro.hardware.topology import HOST

TOY_CAPACITY = 1 << 22
CHUNK_BITS = 14
NUM_QUBITS = 20


def _run(devices: int, version=OVERLAP, machine=MULTI_V100_MACHINE):
    executor = DetailedExecutor(
        Machine(machine),
        chunk_bits=CHUNK_BITS,
        capacity_bytes=TOY_CAPACITY,
        devices=devices,
    )
    return executor.execute(get_circuit("qft", NUM_QUBITS), version)


class TestDeviceLanes:
    def test_default_device_count_follows_machine(self) -> None:
        executor = DetailedExecutor(
            Machine(MULTI_V100_MACHINE),
            chunk_bits=CHUNK_BITS,
            capacity_bytes=TOY_CAPACITY,
        )
        run = executor.execute(get_circuit("qft", NUM_QUBITS), OVERLAP)
        assert run.devices == len(MULTI_V100_MACHINE.gpus)

    def test_namespaced_resources_per_device(self) -> None:
        run = _run(4)
        resources = {r.task.resource for r in run.timeline.records.values()}
        for d in range(4):
            for engine in ("h2d", "gpu", "d2h"):
                assert f"gpu{d}:{engine}" in resources

    def test_single_device_keeps_legacy_lanes(self) -> None:
        # devices=1 must be indistinguishable from the pre-fleet executor:
        # unqualified engine resources, no transfer matrix beyond host<->gpu0.
        run = _run(1, machine=PAPER_MACHINE)
        resources = {r.task.resource for r in run.timeline.records.values()}
        assert {"h2d", "gpu", "d2h"} <= resources
        assert not any(":" in r for r in resources if not r.startswith("__"))

    def test_single_device_makespan_unchanged(self) -> None:
        # The multi-device rewrite must not perturb single-GPU timing.
        legacy = DetailedExecutor(
            Machine(PAPER_MACHINE),
            chunk_bits=CHUNK_BITS,
            capacity_bytes=TOY_CAPACITY,
        )
        run_a = legacy.execute(get_circuit("qft", NUM_QUBITS), NAIVE)
        run_b = _run(1, version=NAIVE, machine=PAPER_MACHINE)
        assert run_a.makespan == pytest.approx(run_b.makespan, rel=1e-12)


class TestTransferAccounting:
    def test_transfers_balance_in_and_out(self) -> None:
        # Uncompressed streaming moves every byte in and back out.
        run = _run(4, version=OVERLAP)
        assert run.bytes_h2d == run.bytes_d2h
        assert run.bytes_h2d > 0

    def test_comm_matrix_routes_everything_through_host(self) -> None:
        # Fig. 18 discipline: no GPU-to-GPU traffic, all via host memory.
        run = _run(4)
        for (src, dst), moved in run.transfers.items():
            assert HOST in (src, dst)
            assert moved > 0
        matrix = run.comm_matrix()
        total = sum(v for row in matrix.values() for v in row.values())
        assert total == run.bytes_h2d + run.bytes_d2h

    def test_link_bytes_cover_all_transfers(self) -> None:
        run = _run(4)
        assert sum(run.link_bytes.values()) == run.bytes_h2d + run.bytes_d2h
        assert all(lid for lid in run.link_bytes)

    def test_work_spreads_across_devices(self) -> None:
        run = _run(4)
        inbound = {
            dst: moved
            for (src, dst), moved in run.transfers.items()
            if src == HOST
        }
        assert len(inbound) == 4
        # Round-robin keeps the spread tight: no device gets more than
        # twice the smallest share.
        assert max(inbound.values()) <= 2 * min(inbound.values())

    def test_task_meta_bytes_sum_to_totals(self) -> None:
        # Every in/out task carries its transfer in meta["bytes"]; summing
        # them reproduces the run-level accounting exactly.
        run = _run(2)
        by_direction = {"in": 0.0, "out": 0.0}
        for record in run.timeline.records.values():
            meta = record.task.meta or {}
            if "bytes" not in meta:
                continue
            if meta["src"] == HOST:
                by_direction["in"] += meta["bytes"]
            else:
                by_direction["out"] += meta["bytes"]
        assert by_direction["in"] == run.bytes_h2d
        assert by_direction["out"] == run.bytes_d2h


class TestScalingBehaviour:
    @pytest.mark.parametrize("devices", [2, 4])
    def test_more_devices_never_slower(self, devices: int) -> None:
        single = _run(1)
        multi = _run(devices)
        assert multi.makespan <= single.makespan * 1.0001

    def test_device_count_recorded(self) -> None:
        assert _run(2).devices == 2
