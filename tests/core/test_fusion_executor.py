"""Tests for fused execution in the timed executor."""

from __future__ import annotations

import pytest

from repro.circuits.fusion import fuse
from repro.circuits.library import get_circuit
from repro.core.executor import FusedOp, TimedExecutor
from repro.core.versions import NAIVE, OVERLAP, PRUNING
from repro.hardware.machine import Machine
from repro.hardware.specs import PAPER_MACHINE


@pytest.fixture(scope="module")
def executor() -> TimedExecutor:
    return TimedExecutor(Machine(PAPER_MACHINE))


class TestFusedOp:
    def test_from_block(self) -> None:
        circuit = get_circuit("qft", 6)
        block = fuse(circuit, 3)[0]
        op = FusedOp.from_block(block)
        assert op.qubits == block.qubits
        assert op.num_qubits == block.width
        assert op.name.startswith("fused[")

    def test_diagonal_only_when_all_members_diagonal(self) -> None:
        from repro.circuits.circuit import QuantumCircuit

        diagonal = QuantumCircuit(2).cz(0, 1).rz(0.3, 0)
        mixed = QuantumCircuit(2).cz(0, 1).h(0)
        assert FusedOp.from_block(fuse(diagonal, 2)[0]).is_diagonal
        assert not FusedOp.from_block(fuse(mixed, 2)[0]).is_diagonal


class TestFusedExecution:
    def test_fusion_reduces_streaming_passes(self, executor) -> None:
        circuit = get_circuit("hchain", 31)
        unfused = executor.execute(circuit, NAIVE)
        fused = executor.execute(circuit, NAIVE, fusion_max_qubits=4)
        assert fused.bytes_h2d < unfused.bytes_h2d
        assert fused.total_seconds < unfused.total_seconds

    def test_fusion_composes_with_pruning(self, executor) -> None:
        circuit = get_circuit("iqp", 31)
        timing = executor.execute(circuit, PRUNING, fusion_max_qubits=4)
        # Pruning still sees small live sets early on.
        fractions = [g.live_fraction for g in timing.per_gate if g.name != "<readout>"]
        assert fractions[0] < 1e-4

    def test_wider_fusion_monotone(self, executor) -> None:
        circuit = get_circuit("qft", 31)
        times = [
            executor.execute(circuit, OVERLAP, fusion_max_qubits=width).total_seconds
            for width in (0, 2, 4)
        ]
        assert times[2] <= times[1] <= times[0] * 1.001

    def test_fusion_off_is_default(self, executor) -> None:
        circuit = get_circuit("gs", 31)
        default = executor.execute(circuit, OVERLAP)
        explicit = executor.execute(circuit, OVERLAP, fusion_max_qubits=0)
        assert default.total_seconds == explicit.total_seconds
