"""Tests for the chunk-granular detailed executor."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.circuits.library import get_circuit
from repro.core.detailed import DetailedExecutor
from repro.core.executor import TimedExecutor
from repro.core.versions import BASELINE, NAIVE, OVERLAP, PRUNING, QGPU
from repro.errors import SimulationError
from repro.hardware.machine import Machine
from repro.hardware.specs import PAPER_MACHINE

#: 4 MiB toy GPU buffer against 16 MiB (20-qubit) states: streaming active.
TOY_CAPACITY = 1 << 22
CHUNK_BITS = 14
NUM_QUBITS = 20


@pytest.fixture(scope="module")
def detailed() -> DetailedExecutor:
    return DetailedExecutor(
        Machine(PAPER_MACHINE), chunk_bits=CHUNK_BITS, capacity_bytes=TOY_CAPACITY
    )


@pytest.fixture(scope="module")
def closed_form() -> TimedExecutor:
    toy_gpu = replace(
        PAPER_MACHINE.gpus[0], memory_bytes=int(TOY_CAPACITY / 0.97) + 4096
    )
    toy = Machine(replace(PAPER_MACHINE, gpus=(toy_gpu,)))
    return TimedExecutor(toy, chunk_bits=CHUNK_BITS)


class TestCrossValidation:
    @pytest.mark.parametrize("family", ["gs", "qft", "iqp"])
    def test_naive_matches_closed_form_exactly(
        self, detailed, closed_form, family: str
    ) -> None:
        circuit = get_circuit(family, NUM_QUBITS)
        chunk_level = detailed.execute(circuit, NAIVE).makespan
        formula = closed_form.execute(circuit, NAIVE).total_seconds
        assert chunk_level == pytest.approx(formula, rel=1e-6)

    @pytest.mark.parametrize("family", ["gs", "qft", "iqp"])
    @pytest.mark.parametrize("version", [OVERLAP, PRUNING], ids=lambda v: v.name)
    def test_overlapped_within_drain_tolerance(
        self, detailed, closed_form, family: str, version
    ) -> None:
        # Continuous cross-gate streaming makes the detailed schedule at
        # most the closed form, and never more than ~25% below it.
        circuit = get_circuit(family, NUM_QUBITS)
        chunk_level = detailed.execute(circuit, version).makespan
        formula = closed_form.execute(circuit, version).total_seconds
        assert chunk_level <= formula * 1.0001
        assert chunk_level >= 0.75 * formula

    def test_pruned_chunk_accounting(self, detailed) -> None:
        circuit = get_circuit("iqp", NUM_QUBITS)
        unpruned = detailed.execute(circuit, OVERLAP)
        pruned = detailed.execute(circuit, PRUNING)
        assert unpruned.chunks_pruned == 0
        assert pruned.chunks_pruned > 0
        assert pruned.chunk_copies < unpruned.chunk_copies
        assert pruned.makespan < unpruned.makespan

    def test_compression_shrinks_makespan(self, detailed) -> None:
        circuit = get_circuit("qft", NUM_QUBITS)
        plain = detailed.execute(circuit, PRUNING).makespan
        compressed = detailed.execute(circuit, QGPU, compression_ratio=0.3).makespan
        assert compressed < plain

    def test_timeline_engines_are_pipelined(self, detailed) -> None:
        circuit = get_circuit("gs", NUM_QUBITS)
        run = detailed.execute(circuit, OVERLAP)
        # Both copy engines stay busy most of the makespan.
        assert run.timeline.utilization("h2d") > 0.5
        assert run.timeline.utilization("d2h") > 0.5


class TestValidation:
    def test_static_baseline_rejected(self, detailed) -> None:
        with pytest.raises(SimulationError, match="streaming versions"):
            detailed.execute(get_circuit("gs", NUM_QUBITS), BASELINE)

    def test_chunk_count_limit(self) -> None:
        executor = DetailedExecutor(
            Machine(PAPER_MACHINE), chunk_bits=4, capacity_bytes=1 << 12
        )
        with pytest.raises(SimulationError, match="impractical"):
            executor.execute(get_circuit("gs", 16), OVERLAP)

    def test_capacity_below_chunk_rejected(self) -> None:
        with pytest.raises(SimulationError, match="capacity"):
            DetailedExecutor(
                Machine(PAPER_MACHINE), chunk_bits=14, capacity_bytes=1 << 10
            )

    def test_narrow_circuit_rejected(self, detailed) -> None:
        with pytest.raises(SimulationError, match="narrower"):
            detailed.execute(get_circuit("gs", 8), OVERLAP)
