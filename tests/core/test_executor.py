"""Tests for the timed executor (machine-model execution)."""

from __future__ import annotations

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import get_circuit
from repro.core.executor import TimedExecutor, TimedResult
from repro.core.versions import (
    ALL_VERSIONS,
    BASELINE,
    NAIVE,
    OVERLAP,
    PRUNING,
    QGPU,
    REORDER,
    VersionConfig,
)
from repro.errors import SimulationError
from repro.hardware.machine import Machine
from repro.hardware.specs import (
    AMP_BYTES,
    MULTI_P4_MACHINE,
    PAPER_MACHINE,
    V100_MACHINE,
)


@pytest.fixture(scope="module")
def executor() -> TimedExecutor:
    return TimedExecutor(Machine(PAPER_MACHINE))


@pytest.fixture(scope="module")
def qft_large() -> QuantumCircuit:
    return get_circuit("qft", 32)


class TestRegimes:
    def test_small_circuit_is_gpu_resident(self, executor: TimedExecutor) -> None:
        circuit = get_circuit("qft", 24)  # 256 MiB << 16 GiB
        for version in ALL_VERSIONS:
            result = executor.execute(circuit, version)
            # Only the terminal readout moves data.
            assert result.bytes_h2d == 0
            assert result.bytes_d2h <= AMP_BYTES << 24
            assert result.cpu_seconds == 0

    def test_large_circuit_streams(self, executor: TimedExecutor, qft_large) -> None:
        result = executor.execute(qft_large, NAIVE)
        # Every gate round-trips the full state.
        expected = len(qft_large) * (AMP_BYTES << 32)
        assert result.bytes_h2d == pytest.approx(expected, rel=1e-6)
        assert result.bytes_d2h == pytest.approx(expected, rel=1e-6)

    def test_streaming_bytes_symmetric(self, executor: TimedExecutor, qft_large) -> None:
        for version in (NAIVE, OVERLAP, PRUNING):
            result = executor.execute(qft_large, version)
            assert result.bytes_h2d == pytest.approx(result.bytes_d2h)

    def test_baseline_uses_cpu_heavily(self, executor: TimedExecutor, qft_large) -> None:
        result = executor.execute(qft_large, BASELINE)
        shares = result.breakdown()
        assert shares["cpu"] > 0.8  # paper Fig. 2: ~89%
        assert shares["gpu"] < 0.05


class TestVersionOrdering:
    """The paper's headline monotonicity: each optimization helps."""

    @pytest.mark.parametrize("family", ["qft", "iqp", "gs", "qaoa", "hchain"])
    def test_stacked_versions_are_monotone(self, executor, family: str) -> None:
        circuit = get_circuit(family, 32)
        overlap = executor.execute(circuit, OVERLAP).total_seconds
        naive = executor.execute(circuit, NAIVE).total_seconds
        pruning = executor.execute(circuit, PRUNING).total_seconds
        reorder = executor.execute(circuit, REORDER).total_seconds
        qgpu = executor.execute(circuit, QGPU, compression_ratio=0.6).total_seconds
        assert overlap < naive
        assert pruning <= overlap * 1.001
        assert reorder <= pruning * 1.001
        assert qgpu <= reorder * 1.001

    def test_naive_is_slower_than_baseline_at_scale(self, executor, qft_large) -> None:
        naive = executor.execute(qft_large, NAIVE).total_seconds
        baseline = executor.execute(qft_large, BASELINE).total_seconds
        assert naive > baseline  # paper Fig. 3

    def test_compression_ratio_scales_transfer(self, executor, qft_large) -> None:
        full = executor.execute(qft_large, QGPU, compression_ratio=1.0)
        half = executor.execute(qft_large, QGPU, compression_ratio=0.5)
        assert half.bytes_d2h == pytest.approx(0.5 * full.bytes_d2h, rel=1e-6)
        assert half.total_seconds < full.total_seconds

    def test_pruning_helps_iqp_more_than_qft(self, executor) -> None:
        results = {}
        for family in ("iqp", "qft"):
            circuit = get_circuit(family, 32)
            overlap = executor.execute(circuit, OVERLAP).total_seconds
            pruning = executor.execute(circuit, PRUNING).total_seconds
            results[family] = pruning / overlap
        assert results["iqp"] < results["qft"]  # paper Table II / Fig. 12


class TestAccounting:
    def test_totals_equal_sum_of_gate_records(self, executor, qft_large) -> None:
        result = executor.execute(qft_large, OVERLAP)
        assert result.total_seconds == pytest.approx(
            sum(g.seconds for g in result.per_gate)
        )
        assert result.bytes_h2d == pytest.approx(
            sum(g.bytes_h2d for g in result.per_gate)
        )

    def test_breakdown_fractions_bounded(self, executor, qft_large) -> None:
        for version in ALL_VERSIONS:
            shares = executor.execute(qft_large, version).breakdown()
            assert all(0 <= value <= 1.0 + 1e-9 for value in shares.values())
            assert shares["cpu"] + shares["transfer"] <= 1.0 + 1e-9

    def test_live_fraction_recorded(self, executor) -> None:
        circuit = get_circuit("iqp", 31)
        result = executor.execute(circuit, PRUNING)
        fractions = [g.live_fraction for g in result.per_gate if g.name != "<readout>"]
        assert fractions[0] < 1e-6
        assert max(fractions) == 1.0

    def test_gpu_flops_positive_when_streaming(self, executor, qft_large) -> None:
        result = executor.execute(qft_large, OVERLAP)
        assert result.gpu_flops > 0
        assert result.gpu_bytes_touched > 0

    def test_csv_export_round_trips_totals(self, executor) -> None:
        import csv
        import io

        result = executor.execute(get_circuit("gs", 31), PRUNING)
        rows = list(csv.DictReader(io.StringIO(result.to_csv())))
        assert len(rows) == len(result.per_gate)
        total = sum(float(row["seconds"]) for row in rows)
        assert total == pytest.approx(result.total_seconds)
        assert rows[0]["name"] == result.per_gate[0].name


class TestMultiGpu:
    def test_multi_gpu_faster_than_single(self) -> None:
        circuit = get_circuit("qft", 31)
        single = TimedExecutor(Machine(MULTI_P4_MACHINE.with_gpu_count(1)))
        quad = TimedExecutor(Machine(MULTI_P4_MACHINE))
        t1 = single.execute(circuit, QGPU, 0.5).total_seconds
        t4 = quad.execute(circuit, QGPU, 0.5).total_seconds
        assert t4 < t1
        assert t4 > t1 / 4.5  # no superlinear magic

    def test_multi_gpu_baseline_uses_pooled_capacity(self) -> None:
        circuit = get_circuit("gs", 31)  # 32 GiB state = 4x8 GiB pool
        quad = TimedExecutor(Machine(MULTI_P4_MACHINE))
        result = quad.execute(circuit, BASELINE)
        # Pool capacity is 4x7.76 GiB = ~31 GiB < 32 GiB: still hybrid.
        assert result.cpu_seconds > 0


class TestValidation:
    def test_state_exceeding_host_rejected(self) -> None:
        executor = TimedExecutor(Machine(V100_MACHINE))  # 80 GiB host
        with pytest.raises(SimulationError, match="host"):
            executor.execute(get_circuit("gs", 33), OVERLAP)

    def test_bad_compression_ratio_rejected(self, executor, qft_large) -> None:
        with pytest.raises(SimulationError):
            executor.execute(qft_large, QGPU, compression_ratio=0.0)
        with pytest.raises(SimulationError):
            executor.execute(qft_large, QGPU, compression_ratio=1.5)

    def test_live_residency_ablation_is_faster(self, executor) -> None:
        circuit = get_circuit("iqp", 32)
        streaming = executor.execute(circuit, PRUNING).total_seconds
        resident_cfg = VersionConfig(
            "Pruning+residency", dynamic_allocation=True, overlap=True,
            pruning=True, live_residency=True,
        )
        resident = executor.execute(circuit, resident_cfg).total_seconds
        assert resident < streaming
