"""Tests for the command-line interface."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main
from repro.circuits.library import get_circuit
from repro.circuits.qasm import to_qasm


class TestSimulate:
    def test_family_simulation(self, capsys) -> None:
        assert main(["simulate", "--family", "bv", "--qubits", "8",
                     "--shots", "20"]) == 0
        out = capsys.readouterr().out
        assert "bv_8" in out
        assert "pruned chunk updates" in out

    def test_qasm_input(self, tmp_path, capsys) -> None:
        path = tmp_path / "circ.qasm"
        path.write_text(to_qasm(get_circuit("gs", 5)))
        assert main(["simulate", "--qasm", str(path), "--shots", "10"]) == 0
        assert "circ" in capsys.readouterr().out

    def test_version_selection(self, capsys) -> None:
        assert main(["simulate", "--family", "gs", "--qubits", "6",
                     "--version", "Baseline"]) == 0
        assert "Baseline" in capsys.readouterr().out


class TestEstimate:
    def test_estimate_all_versions(self, capsys) -> None:
        assert main(["estimate", "--family", "qft", "--qubits", "31",
                     "--machine", "p100"]) == 0
        out = capsys.readouterr().out
        for version in ("Baseline", "Naive", "Overlap", "Pruning", "Q-GPU"):
            assert version in out

    def test_host_memory_error_reported(self, capsys) -> None:
        assert main(["estimate", "--family", "gs", "--qubits", "34",
                     "--machine", "v100"]) == 1
        assert "error:" in capsys.readouterr().err


class TestOtherCommands:
    def test_profile(self, capsys) -> None:
        assert main(["profile", "--family", "gs", "--qubits", "10"]) == 0
        assert "mean GFC ratio" in capsys.readouterr().out

    def test_transpile(self, capsys) -> None:
        assert main(["transpile", "--family", "gs", "--qubits", "4"]) == 0
        out = capsys.readouterr().out
        assert "OPENQASM 2.0;" in out

    def test_experiment_subset(self, capsys) -> None:
        assert main(["experiment", "tab2"]) == 0
        assert "[tab2]" in capsys.readouterr().out

    def test_missing_circuit_source_errors(self) -> None:
        with pytest.raises(SystemExit):
            main(["simulate"])

    def test_plan(self, capsys) -> None:
        assert main(["plan", "--family", "iqp", "--qubits", "31"]) == 0
        out = capsys.readouterr().out
        assert "plan for iqp_31" in out
        assert "->" in out

    def test_trace_writes_json(self, tmp_path, capsys) -> None:
        output = tmp_path / "trace.json"
        assert main(["trace", "--family", "gs", "--qubits", "33",
                     "--output", str(output)]) == 0
        assert output.exists()
        import json

        payload = json.loads(output.read_text())
        assert payload["traceEvents"]

    def test_trace_with_nothing_streaming(self, tmp_path, capsys) -> None:
        output = tmp_path / "trace.json"
        assert main(["trace", "--family", "gs", "--qubits", "20",
                     "--output", str(output)]) == 0
        assert "no trace written" in capsys.readouterr().out
        assert not output.exists()


class TestReliability:
    def test_simulate_with_fault_plan_reports_recovery(self, capsys) -> None:
        assert main(["simulate", "--family", "qft", "--qubits", "7",
                     "--fault-plan", "seed=42,transfer=0.1"]) == 0
        out = capsys.readouterr().out
        assert "faults injected" in out
        assert "retries spent" in out

    def test_simulate_checkpoint_then_resume(self, tmp_path, capsys) -> None:
        ckpt = tmp_path / "run.qgck"
        assert main(["simulate", "--family", "qft", "--qubits", "7",
                     "--checkpoint-every", "5", "--checkpoint", str(ckpt)]) == 0
        assert ckpt.exists()
        assert main(["simulate", "--family", "qft", "--qubits", "7",
                     "--resume", str(ckpt)]) == 0
        assert "resumed from gate" in capsys.readouterr().out

    def test_reliability_command_passes_bit_identity(self, capsys) -> None:
        assert main(["reliability", "--family", "qft", "--qubits", "7",
                     "--fault-plan", "seed=7,transfer=0.08"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical to fault-free run: True" in out
        assert "final state bit-identical: True" in out
        assert "modelled reliability overhead" in out

    def test_reliability_rejects_bad_plan_spec(self, capsys) -> None:
        assert main(["reliability", "--family", "bv", "--qubits", "6",
                     "--fault-plan", "transfer=lots"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_checkpoint_every_without_path_errors(self, capsys) -> None:
        assert main(["simulate", "--family", "bv", "--qubits", "6",
                     "--checkpoint-every", "3"]) == 1
        assert "checkpoint_path" in capsys.readouterr().err


class TestFingerprintFlag:
    def test_transpile_fingerprint(self, capsys) -> None:
        assert main(["transpile", "--family", "gs", "--qubits", "4",
                     "--fingerprint"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == 2  # original + transpiled
        for line in lines:
            digest = line.split()[0]
            assert len(digest) == 64
            int(digest, 16)  # hex sha256

    def test_fingerprint_suppresses_qasm(self, capsys) -> None:
        assert main(["transpile", "--family", "gs", "--qubits", "4",
                     "--fingerprint"]) == 0
        assert "OPENQASM" not in capsys.readouterr().out


class TestServeBatch:
    def test_manifest_run_writes_metrics(self, tmp_path, capsys) -> None:
        import json

        manifest = tmp_path / "jobs.json"
        manifest.write_text(json.dumps({"jobs": [
            {"family": "bv", "qubits": 6, "shots": 10, "copies": 2},
            {"family": "gs", "qubits": 6},
        ]}))
        metrics = tmp_path / "metrics.json"
        assert main(["serve-batch", "--manifest", str(manifest),
                     "--workers", "2", "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "3 submitted" in out
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["jobs_succeeded"] == 3
        assert snap["cache"]["hits"] == 1

    def test_deterministic_metrics_reproducible(self, tmp_path) -> None:
        import json

        manifest = tmp_path / "jobs.json"
        manifest.write_text(json.dumps([
            {"family": "bv", "qubits": 6, "shots": 5, "copies": 2},
        ]))
        exports = []
        for run in range(2):
            metrics = tmp_path / f"metrics{run}.json"
            assert main(["serve-batch", "--manifest", str(manifest),
                         "--workers", "1", "--seed", "3",
                         "--metrics", str(metrics)]) == 0
            exports.append(metrics.read_bytes())
        assert exports[0] == exports[1]

    def test_failed_job_sets_exit_code(self, tmp_path, capsys) -> None:
        import json

        manifest = tmp_path / "jobs.json"
        manifest.write_text(json.dumps([
            {"family": "bv", "qubits": 6, "fault_plan": "seed=3,transfer=1.0"},
        ]))
        assert main(["serve-batch", "--manifest", str(manifest),
                     "--sim-recovery", "strict", "--max-attempts", "2"]) == 1
        assert "failed" in capsys.readouterr().out

    def test_requires_manifest_or_journal(self) -> None:
        with pytest.raises(SystemExit):
            main(["serve-batch"])


class TestObservability:
    def test_simulate_writes_trace_and_metrics(self, tmp_path, capsys) -> None:
        import json

        trace = tmp_path / "run.trace.json"
        metrics = tmp_path / "run.metrics.json"
        assert main(["simulate", "--family", "bv", "--qubits", "8",
                     "--workers", "1", "--trace", str(trace),
                     "--trace-clock", "logical", "--metrics", str(metrics)]) == 0
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e.get("ph") == "X" for e in events)
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["runs.completed"] == 1
        assert snap["counters"]["chunk_updates.total"] > 0

    def test_simulate_trace_deterministic_across_runs(self, tmp_path) -> None:
        blobs = []
        for run in range(2):
            trace = tmp_path / f"t{run}.json"
            assert main(["simulate", "--family", "qft", "--qubits", "7",
                         "--workers", "1", "--trace", str(trace),
                         "--trace-clock", "logical"]) == 0
            blobs.append(trace.read_bytes())
        assert blobs[0] == blobs[1]

    def test_trace_summary_renders_breakdown(self, tmp_path, capsys) -> None:
        trace = tmp_path / "run.trace.json"
        assert main(["simulate", "--family", "bv", "--qubits", "8",
                     "--workers", "1", "--trace", str(trace),
                     "--trace-clock", "logical"]) == 0
        capsys.readouterr()
        assert main(["trace", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        for stage in ("h2d", "compute", "codec", "d2h"):
            assert stage in out
        assert "wall total" in out
        assert "ticks" in out  # logical clock detected from metadata

    def test_trace_summary_of_des_export(self, tmp_path, capsys) -> None:
        trace = tmp_path / "des.json"
        assert main(["trace", "--family", "gs", "--qubits", "33",
                     "--output", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "compute" in out
        assert "us total" in out

    def test_trace_validate_accepts_good_trace(self, tmp_path, capsys) -> None:
        trace = tmp_path / "run.trace.json"
        assert main(["simulate", "--family", "bv", "--qubits", "8",
                     "--workers", "2", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", "validate", str(trace)]) == 0
        assert "well-formed" in capsys.readouterr().out

    def test_trace_summary_missing_file_errors(self, tmp_path, capsys) -> None:
        assert main(["trace", "summary", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_trace_analysis_requires_file(self) -> None:
        with pytest.raises(SystemExit):
            main(["trace", "summary"])

    def test_serve_batch_trace_deterministic(self, tmp_path) -> None:
        import json

        manifest = tmp_path / "jobs.json"
        manifest.write_text(json.dumps([
            {"family": "bv", "qubits": 6, "shots": 5, "copies": 2},
        ]))
        blobs = []
        for run in range(2):
            trace = tmp_path / f"svc{run}.json"
            assert main(["serve-batch", "--manifest", str(manifest),
                         "--workers", "1", "--trace", str(trace)]) == 0
            blobs.append(trace.read_bytes())
        assert blobs[0] == blobs[1]

    def test_serve_batch_metrics_include_sim_stats(self, tmp_path) -> None:
        import json

        manifest = tmp_path / "jobs.json"
        manifest.write_text(json.dumps([
            {"family": "bv", "qubits": 6, "shots": 5},
        ]))
        metrics = tmp_path / "metrics.json"
        assert main(["serve-batch", "--manifest", str(manifest),
                     "--workers", "1", "--metrics", str(metrics)]) == 0
        counters = json.loads(metrics.read_text())["counters"]
        assert counters["jobs_succeeded"] == 1
        assert counters["sim.chunk_updates_total"] > 0

    def test_transpile_trace_counts_passes(self, tmp_path, capsys) -> None:
        import json

        metrics = tmp_path / "transpile.metrics.json"
        assert main(["transpile", "--family", "gs", "--qubits", "4",
                     "--metrics", str(metrics)]) == 0
        counters = json.loads(metrics.read_text())["counters"]
        assert counters["transpile.passes"] >= 1
        assert counters["transpile.gates_out"] > 0

    def test_log_flags_accepted(self, capsys) -> None:
        assert main(["--log-level", "info", "--log-format", "json",
                     "simulate", "--family", "bv", "--qubits", "6"]) == 0
        assert "pruned chunk updates" in capsys.readouterr().out


class TestJournalCommands:
    def test_submit_status_serve_cancel_flow(self, tmp_path, capsys) -> None:
        journal = str(tmp_path / "jobs.jsonl")
        assert main(["submit", "--family", "bv", "--qubits", "6",
                     "--shots", "10", "--journal", journal]) == 0
        assert "j0001" in capsys.readouterr().out
        assert main(["submit", "--family", "gs", "--qubits", "6",
                     "--journal", journal]) == 0
        capsys.readouterr()

        assert main(["cancel", "j0002", "--journal", journal]) == 0
        capsys.readouterr()

        assert main(["serve-batch", "--journal", journal]) == 0
        capsys.readouterr()

        assert main(["status", "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "SUCCEEDED" in out
        assert "CANCELLED" in out

    def test_status_single_job(self, tmp_path, capsys) -> None:
        journal = str(tmp_path / "jobs.jsonl")
        main(["submit", "--family", "bv", "--qubits", "6",
              "--journal", journal])
        capsys.readouterr()
        assert main(["status", "--journal", journal, "--job", "j0001"]) == 0
        assert "PENDING" in capsys.readouterr().out

    def test_status_unknown_job_errors(self, tmp_path, capsys) -> None:
        journal = str(tmp_path / "jobs.jsonl")
        main(["submit", "--family", "bv", "--qubits", "6",
              "--journal", journal])
        capsys.readouterr()
        assert main(["status", "--journal", journal, "--job", "j0042"]) == 1

    def test_cancel_terminal_job_errors(self, tmp_path, capsys) -> None:
        journal = str(tmp_path / "jobs.jsonl")
        main(["submit", "--family", "bv", "--qubits", "6",
              "--journal", journal])
        main(["serve-batch", "--journal", journal])
        capsys.readouterr()
        assert main(["cancel", "j0001", "--journal", journal]) == 1


class TestTraceAnalytics:
    def _traced_run(self, tmp_path) -> str:
        trace = tmp_path / "run.trace.json"
        assert main(["simulate", "--family", "bv", "--qubits", "10",
                     "--workers", "1", "--trace", str(trace),
                     "--trace-clock", "logical"]) == 0
        return str(trace)

    def test_trace_analyze_renders_and_writes_json(self, tmp_path, capsys) -> None:
        import json

        trace = self._traced_run(tmp_path)
        out_json = tmp_path / "analysis.json"
        capsys.readouterr()
        assert main(["trace", "analyze", trace, "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "bottlenecks" in out
        payload = json.loads(out_json.read_text())
        assert payload["span_count"] > 0
        assert payload["critical_path"]["duration"] > 0

    def test_trace_critical_path_overlap_run(self, tmp_path, capsys) -> None:
        import json

        trace = tmp_path / "overlap.json"
        assert main(["trace", "--family", "bv", "--qubits", "32",
                     "--version", "Overlap", "--gates", "8",
                     "--output", str(trace)]) == 0
        out_json = tmp_path / "critical.json"
        capsys.readouterr()
        assert main(["trace", "critical-path", str(trace),
                     "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "overlap efficiency" in out
        payload = json.loads(out_json.read_text())
        # The acceptance criteria: efficiency in (0, 1] and the critical
        # path's stage totals tile the root duration within 1%.
        efficiency = payload["overlap"]["efficiency"]
        assert efficiency is not None and 0.0 < efficiency <= 1.0
        path = payload["critical_path"]
        coverage = sum(path["stage_totals"].values()) / path["duration"]
        assert abs(coverage - 1.0) < 0.01

    def test_trace_drift_gate_passes_on_stream_trace(self, tmp_path, capsys) -> None:
        import json

        trace = tmp_path / "overlap.json"
        assert main(["trace", "--family", "bv", "--qubits", "32",
                     "--version", "Overlap", "--gates", "8",
                     "--output", str(trace)]) == 0
        report = tmp_path / "drift.json"
        capsys.readouterr()
        assert main(["trace", "drift", str(trace), "--family", "bv",
                     "--qubits", "32", "--version", "Overlap",
                     "--report", str(report)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        payload = json.loads(report.read_text())
        assert payload["passed"] is True
        assert payload["max_drift"] <= payload["tolerance"]

    def test_trace_drift_fails_on_mismatched_trace(self, tmp_path, capsys) -> None:
        # A functional bv_10 trace is ~all compute; the bv_32 model is
        # transfer-dominated, so the gate must fail.
        trace = self._traced_run(tmp_path)
        capsys.readouterr()
        assert main(["trace", "drift", trace, "--family", "bv",
                     "--qubits", "32", "--version", "Overlap"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_trace_drift_requires_circuit(self, tmp_path) -> None:
        trace = self._traced_run(tmp_path)
        with pytest.raises(SystemExit):
            main(["trace", "drift", trace])

    def test_trace_critical_path_empty_trace(self, tmp_path, capsys) -> None:
        path = tmp_path / "empty.json"
        path.write_text('{"traceEvents": []}\n')
        assert main(["trace", "critical-path", str(path)]) == 0
        captured = capsys.readouterr()
        assert "empty trace" in captured.out
        assert "no spans" in captured.err


class TestServeBatchHttp:
    def test_http_port_flag_serves_and_shuts_down(self, tmp_path, capsys) -> None:
        import json

        manifest = tmp_path / "jobs.json"
        manifest.write_text(json.dumps([
            {"family": "bv", "qubits": 6},
            {"family": "gs", "qubits": 6},
        ]))
        assert main(["serve-batch", "--manifest", str(manifest),
                     "--workers", "1", "--http-port", "0"]) == 0
        out = capsys.readouterr().out
        assert "observability endpoint: http://127.0.0.1:" in out
        assert "2 submitted, 2 succeeded" in out


class TestFleetCli:
    def _fleet_trace(self, tmp_path) -> str:
        trace = tmp_path / "fleet.trace.json"
        assert main(["trace", "--devices", "4", "--family", "qft",
                     "--qubits", "20", "--version", "Overlap",
                     "--machine", "multi_v100", "--output", str(trace)]) == 0
        return str(trace)

    def test_export_devices_writes_device_lanes(self, tmp_path, capsys) -> None:
        import json

        trace = self._fleet_trace(tmp_path)
        out = capsys.readouterr().out
        assert "4 device(s)" in out
        assert "bytes transferred" in out
        events = json.loads(Path(trace).read_text())["traceEvents"]
        lanes = {
            e["args"]["name"]
            for e in events
            if e.get("name") == "thread_name"
        }
        assert {"gpu0:h2d", "gpu3:d2h"} <= lanes
        devices = {
            e["args"]["device"]
            for e in events
            if e.get("name") == "thread_name" and "device" in e.get("args", {})
        }
        assert devices == {"gpu0", "gpu1", "gpu2", "gpu3"}

    def test_export_is_byte_identical_across_runs(self, tmp_path) -> None:
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        a = self._fleet_trace(tmp_path / "a")
        b = self._fleet_trace(tmp_path / "b")
        assert Path(a).read_bytes() == Path(b).read_bytes()

    def test_analyze_fleet_reports_comm_identity(self, tmp_path, capsys) -> None:
        import json
        import re

        trace = self._fleet_trace(tmp_path)
        capsys.readouterr()
        out_json = tmp_path / "fleet.json"
        prom = tmp_path / "fleet.prom"
        assert main(["trace", "analyze", trace, "--fleet",
                     "--json", str(out_json), "--prom", str(prom)]) == 0
        out = capsys.readouterr().out
        assert "imbalance" in out
        assert "gpu0" in out and "gpu3" in out

        # The CLI-reported transfer total at export time must equal the
        # comm-matrix total the analyzer reconstructs from the trace.
        payload = json.loads(out_json.read_text())
        fleet = payload["fleet"]
        matrix_total = sum(
            moved
            for row in fleet["comm_matrix"].values()
            for moved in row.values()
        )
        assert matrix_total == fleet["total_bytes"]
        assert len(fleet["devices"]) == 4

        prom_text = prom.read_text()
        assert "# TYPE" in prom_text
        match = re.search(
            r"^repro_fleet_comm_bytes_total (\S+)$", prom_text, re.MULTILINE
        )
        assert match is not None
        assert float(match.group(1)) == fleet["total_bytes"]

    def test_analyze_without_fleet_flag_omits_report(self, tmp_path, capsys) -> None:
        import json

        trace = self._fleet_trace(tmp_path)
        out_json = tmp_path / "plain.json"
        capsys.readouterr()
        assert main(["trace", "analyze", trace,
                     "--json", str(out_json)]) == 0
        assert "imbalance" not in capsys.readouterr().out
        assert "fleet" not in json.loads(out_json.read_text())
