"""Tests for interconnect topologies (hardware/topology.py)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import HardwareModelError
from repro.hardware.specs import (
    MULTI_V100_MACHINE,
    PAPER_MACHINE,
    PCIE3_X16,
)
from repro.hardware.topology import (
    HOST,
    IB_HDR100,
    DeviceLink,
    Topology,
    default_topology,
    device_name,
    multi_node_ib,
    nvlink_mesh,
    pcie_switch,
)


class TestDeviceName:
    def test_flat(self) -> None:
        assert device_name(3) == "gpu3"

    def test_with_node(self) -> None:
        assert device_name(2, node=1) == "n1:gpu2"


class TestDeviceLink:
    def test_connects_either_direction(self) -> None:
        link = DeviceLink("pcie/host-gpu0", "pcie", HOST, "gpu0", PCIE3_X16)
        assert link.connects(HOST, "gpu0")
        assert link.connects("gpu0", HOST)
        assert not link.connects("gpu0", "gpu1")

    def test_transfer_time_is_latency_plus_bandwidth(self) -> None:
        link = DeviceLink("pcie/host-gpu0", "pcie", HOST, "gpu0", PCIE3_X16)
        spec = PCIE3_X16
        expected = spec.latency + (1 << 20) / spec.bandwidth_per_direction
        assert link.transfer_time(1 << 20) == pytest.approx(expected)


class TestPcieSwitch:
    def test_star_shape(self) -> None:
        topo = pcie_switch(4)
        assert topo.num_devices == 4
        assert topo.devices == ("gpu0", "gpu1", "gpu2", "gpu3")
        # One host link per device, no peer links.
        assert len(topo.links) == 4
        assert topo.peer_links() == ()
        for dev in topo.devices:
            assert topo.host_link(dev).connects(HOST, dev)

    def test_link_ids_are_stable(self) -> None:
        topo = pcie_switch(2)
        assert sorted(link.link_id for link in topo.links) == [
            "pcie/host-gpu0",
            "pcie/host-gpu1",
        ]


class TestNvlinkMesh:
    def test_all_pairs_peer_links(self) -> None:
        topo = nvlink_mesh(4)
        # 4 host links + C(4,2) = 6 peer links.
        assert len(topo.links) == 10
        assert len(topo.peer_links()) == 6
        for a in topo.devices:
            incident = [
                link for link in topo.peer_links() if a in (link.src, link.dst)
            ]
            assert len(incident) == 3
        assert topo.link_between("gpu1", "gpu3") is not None

    def test_link_between_is_symmetric(self) -> None:
        topo = nvlink_mesh(3)
        assert topo.link_between("gpu0", "gpu2") is topo.link_between(
            "gpu2", "gpu0"
        )


class TestMultiNodeIb:
    def test_namespaced_devices_and_hosts(self) -> None:
        topo = multi_node_ib(2, 2)
        assert topo.devices == ("n0:gpu0", "n0:gpu1", "n1:gpu0", "n1:gpu1")
        assert topo.hosts == ("n0:host", "n1:host")
        ib = topo.link_between("n0:host", "n1:host")
        assert ib is not None
        assert ib.spec is IB_HDR100

    def test_every_device_reaches_its_host(self) -> None:
        topo = multi_node_ib(2, 2)
        for node in (0, 1):
            for gpu in (0, 1):
                dev = f"n{node}:gpu{gpu}"
                assert topo.host_link(dev).connects(f"n{node}:host", dev)


class TestValidation:
    def test_duplicate_link_id_rejected(self) -> None:
        link = DeviceLink("dup", "pcie", HOST, "gpu0", PCIE3_X16)
        other = dataclasses.replace(link, dst="gpu1")
        with pytest.raises(HardwareModelError):
            Topology("bad", ("gpu0", "gpu1"), (link, other))

    def test_unknown_endpoint_rejected(self) -> None:
        link = DeviceLink("x", "pcie", HOST, "gpu9", PCIE3_X16)
        with pytest.raises(HardwareModelError):
            Topology("bad", ("gpu0",), (link,))

    def test_device_without_host_link_rejected(self) -> None:
        link = DeviceLink("x", "pcie", HOST, "gpu0", PCIE3_X16)
        with pytest.raises(HardwareModelError):
            Topology("bad", ("gpu0", "gpu1"), (link,))


class TestMachineSpecIntegration:
    def test_default_topology_matches_gpu_count(self) -> None:
        topo = default_topology(MULTI_V100_MACHINE)
        assert topo.num_devices == len(MULTI_V100_MACHINE.gpus)

    def test_default_topology_reuses_machine_link(self) -> None:
        # Timing must be unchanged: the host link of every device carries
        # the machine's own link spec.
        for spec in (PAPER_MACHINE, MULTI_V100_MACHINE):
            topo = default_topology(spec)
            for dev in topo.devices:
                assert topo.host_link(dev).spec is spec.link

    def test_nvlink_machines_get_a_mesh(self) -> None:
        assert "nvlink" in MULTI_V100_MACHINE.link.name.lower()
        topo = MULTI_V100_MACHINE.interconnect()
        assert topo.peer_links()

    def test_explicit_topology_wins(self) -> None:
        topo = pcie_switch(len(PAPER_MACHINE.gpus))
        spec = dataclasses.replace(PAPER_MACHINE, topology=topo)
        assert spec.interconnect() is topo

    def test_topology_device_count_mismatch_rejected(self) -> None:
        with pytest.raises(HardwareModelError):
            dataclasses.replace(PAPER_MACHINE, topology=pcie_switch(7))

    def test_with_gpu_count_drops_stale_topology(self) -> None:
        spec = dataclasses.replace(
            MULTI_V100_MACHINE, topology=nvlink_mesh(4)
        )
        scaled = spec.with_gpu_count(8)
        assert scaled.topology is None
        assert scaled.interconnect().num_devices == 8
