"""Tests for hardware specs and the Machine cost helpers."""

from __future__ import annotations

import pytest

from repro.errors import HardwareModelError
from repro.hardware.machine import GPU_USABLE_FRACTION, Machine
from repro.hardware.specs import (
    A100_MACHINE,
    AMP_BYTES,
    CpuSpec,
    GpuSpec,
    LinkSpec,
    MACHINES,
    MULTI_P4_MACHINE,
    MULTI_V100_MACHINE,
    MachineSpec,
    P100,
    PAPER_MACHINE,
    PCIE3_X16,
    V100_MACHINE,
)


class TestPresets:
    def test_all_machines_registered(self) -> None:
        assert set(MACHINES) == {"p100", "v100", "a100", "multi_p4", "multi_v100"}

    def test_paper_machine_matches_section_3b(self) -> None:
        assert PAPER_MACHINE.gpu.memory_bytes == 16 * 2**30
        assert PAPER_MACHINE.host_memory_bytes == 384 * 2**30
        assert PAPER_MACHINE.cpu.cores == 20
        assert len(PAPER_MACHINE.gpus) == 1

    def test_multi_gpu_servers_have_four_gpus(self) -> None:
        assert len(MULTI_P4_MACHINE.gpus) == 4
        assert len(MULTI_V100_MACHINE.gpus) == 4
        assert MULTI_V100_MACHINE.link.name.startswith("NVLink")

    def test_v100_and_a100_hosts_are_small(self) -> None:
        # Section V-D: 80 GB and 85 GB hosts cannot hold >= 33-qubit states.
        state_33 = AMP_BYTES << 33
        assert V100_MACHINE.host_memory_bytes < state_33
        assert A100_MACHINE.host_memory_bytes < state_33

    def test_gpu_effective_bandwidth(self) -> None:
        assert P100.effective_bandwidth == P100.mem_bandwidth * P100.kernel_efficiency

    def test_with_gpu_count(self) -> None:
        doubled = PAPER_MACHINE.with_gpu_count(2)
        assert len(doubled.gpus) == 2
        with pytest.raises(HardwareModelError):
            PAPER_MACHINE.with_gpu_count(0)


class TestValidation:
    def test_bad_gpu_spec(self) -> None:
        with pytest.raises(HardwareModelError):
            GpuSpec("bad", memory_bytes=0, fp64_flops=1, mem_bandwidth=1)
        with pytest.raises(HardwareModelError):
            GpuSpec("bad", memory_bytes=1, fp64_flops=1, mem_bandwidth=1,
                    kernel_efficiency=1.5)

    def test_bad_cpu_spec(self) -> None:
        with pytest.raises(HardwareModelError):
            CpuSpec("bad", cores=0, effective_bandwidth=1)
        with pytest.raises(HardwareModelError):
            CpuSpec("bad", cores=1, effective_bandwidth=1, chunked_efficiency=0)

    def test_bad_link_spec(self) -> None:
        with pytest.raises(HardwareModelError):
            LinkSpec("bad", bandwidth_per_direction=0)

    def test_machine_needs_gpus_and_memory(self) -> None:
        with pytest.raises(HardwareModelError):
            MachineSpec("bad", cpu=PAPER_MACHINE.cpu, gpus=(),
                        link=PCIE3_X16, host_memory_bytes=1)
        with pytest.raises(HardwareModelError):
            MachineSpec("bad", cpu=PAPER_MACHINE.cpu, gpus=(P100,),
                        link=PCIE3_X16, host_memory_bytes=0)


class TestMachineCosts:
    @pytest.fixture
    def machine(self) -> Machine:
        return Machine(PAPER_MACHINE)

    def test_transfer_time_linear_in_bytes(self, machine: Machine) -> None:
        one = machine.transfer_time(12 * 10**9, num_transfers=0)
        assert one == pytest.approx(1.0)
        assert machine.transfer_time(0) == 0.0

    def test_transfer_latency_added_per_transfer(self, machine: Machine) -> None:
        base = machine.transfer_time(10**9, num_transfers=0)
        with_latency = machine.transfer_time(10**9, num_transfers=100)
        assert with_latency == pytest.approx(base + 100 * PCIE3_X16.latency)

    def test_negative_transfer_rejected(self, machine: Machine) -> None:
        with pytest.raises(HardwareModelError):
            machine.transfer_time(-1)

    def test_gpu_compute_memory_bound(self, machine: Machine) -> None:
        amps = 1 << 30
        expected = 2 * AMP_BYTES * amps / P100.effective_bandwidth
        assert machine.gpu_compute_time(amps) == pytest.approx(expected)

    def test_diagonal_gate_fewer_flops_same_traffic(self, machine: Machine) -> None:
        amps = 1 << 20
        dense = machine.gate_flops(amps, 1, diagonal=False)
        diag = machine.gate_flops(amps, 1, diagonal=True)
        assert diag < dense
        # Both are memory-bound, so the time is identical.
        assert machine.gpu_compute_time(amps, 1, True) == pytest.approx(
            machine.gpu_compute_time(amps, 1, False)
        )

    def test_three_qubit_gate_flops(self, machine: Machine) -> None:
        assert machine.gate_flops(100, 3, False) == pytest.approx(6400)
        assert machine.gate_flops(100, 4, False) == pytest.approx(100 * 8 * 16)

    def test_cpu_chunked_slower_than_openmp(self, machine: Machine) -> None:
        amps = 1 << 28
        assert machine.cpu_compute_time(amps, chunked=True) > machine.cpu_compute_time(
            amps, chunked=False
        )

    def test_capacity_accounts_for_usable_fraction(self, machine: Machine) -> None:
        assert machine.gpu_capacity_bytes() == int(
            P100.memory_bytes * GPU_USABLE_FRACTION
        )
        assert machine.fits_on_gpu(machine.gpu_capacity_bytes())
        assert not machine.fits_on_gpu(P100.memory_bytes)

    def test_host_capacity_includes_slack(self, machine: Machine) -> None:
        assert machine.fits_in_host(AMP_BYTES << 34)  # 256 GiB in 384 GiB
        assert not machine.fits_in_host(AMP_BYTES << 35)

    def test_multi_gpu_total_capacity(self) -> None:
        machine = Machine(MULTI_P4_MACHINE)
        assert machine.total_gpu_capacity_bytes() == 4 * machine.gpu_capacity_bytes()

    def test_codec_time(self, machine: Machine) -> None:
        assert machine.codec_time(P100.codec_bandwidth) == pytest.approx(1.0)
