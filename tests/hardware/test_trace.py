"""Tests for chrome-trace export."""

from __future__ import annotations

import json

from repro.core.schedule import GateStreamPlan, stream_makespan
from repro.hardware.events import EventTimeline
from repro.hardware.pipeline import StageTimes
from repro.hardware.trace import to_chrome_trace, write_chrome_trace


def sample_result():
    timeline = EventTimeline()
    timeline.add("load", "h2d", 2.0)
    timeline.add("kernel", "gpu", 1.0, deps=("load",))
    timeline.add("store", "d2h", 2.0, deps=("kernel",))
    return timeline.run()


class TestChromeTrace:
    def test_events_cover_all_tasks(self) -> None:
        result = sample_result()
        events = to_chrome_trace(result)
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in spans} == {"load", "kernel", "store"}

    def test_metadata_names_resources(self) -> None:
        events = to_chrome_trace(sample_result(), process_name="demo")
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"demo", "h2d", "gpu", "d2h"} <= names

    def test_timestamps_scaled_and_ordered(self) -> None:
        events = to_chrome_trace(sample_result())
        spans = {e["name"]: e for e in events if e["ph"] == "X"}
        assert spans["load"]["ts"] == 0.0
        assert spans["kernel"]["ts"] == 2.0e6
        assert spans["store"]["dur"] == 2.0e6

    def test_distinct_tids_per_resource(self) -> None:
        events = to_chrome_trace(sample_result())
        spans = [e for e in events if e["ph"] == "X"]
        assert len({e["tid"] for e in spans}) == 3

    def test_write_round_trips_as_json(self, tmp_path) -> None:
        plans = [GateStreamPlan("g", 3, StageTimes(1.0, 0.2, 1.0))]
        result = stream_makespan(plans)
        path = tmp_path / "trace.json"
        written = write_chrome_trace(result, path)
        assert path.stat().st_size == written
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) >= 9
