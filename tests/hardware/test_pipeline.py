"""Closed-form pipeline formulas validated against the event engine."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.hardware.events import EventTimeline
from repro.hardware.pipeline import (
    StageTimes,
    double_buffered_roundtrip,
    pipeline_transfer_exposure,
    serial_roundtrip,
)


def des_double_buffered(num_batches: int, stages: StageTimes, buffers: int = 2) -> float:
    """Reference implementation on the discrete-event engine."""
    timeline = EventTimeline()
    for k in range(num_batches):
        in_deps = []
        if k >= 1:
            in_deps.append(f"in{k - 1}")
        if k >= buffers:
            in_deps.append(f"out{k - buffers}")
        timeline.add(f"in{k}", "h2d", stages.h2d, in_deps)
        comp_deps = [f"in{k}"] + ([f"comp{k - 1}"] if k else [])
        timeline.add(f"comp{k}", "gpu", stages.compute, comp_deps)
        out_deps = [f"comp{k}"] + ([f"out{k - 1}"] if k else [])
        timeline.add(f"out{k}", "d2h", stages.d2h, out_deps)
    return timeline.run().makespan if num_batches else 0.0


positive_floats = st.floats(0.0, 50.0, allow_nan=False)


class TestAgainstEventEngine:
    @given(
        num_batches=st.integers(0, 20),
        h2d=positive_floats,
        compute=positive_floats,
        d2h=positive_floats,
        buffers=st.integers(1, 4),
    )
    def test_double_buffered_matches_des(
        self, num_batches: int, h2d: float, compute: float, d2h: float, buffers: int
    ) -> None:
        stages = StageTimes(h2d, compute, d2h)
        closed_form = double_buffered_roundtrip(num_batches, stages, buffers)
        reference = des_double_buffered(num_batches, stages, buffers)
        assert closed_form == pytest.approx(reference, rel=1e-12, abs=1e-12)


class TestProperties:
    @given(
        num_batches=st.integers(1, 30),
        h2d=positive_floats,
        compute=positive_floats,
        d2h=positive_floats,
    )
    def test_overlap_never_slower_than_serial(
        self, num_batches: int, h2d: float, compute: float, d2h: float
    ) -> None:
        stages = StageTimes(h2d, compute, d2h)
        assert (
            double_buffered_roundtrip(num_batches, stages)
            <= serial_roundtrip(num_batches, stages) + 1e-12
        )

    @given(
        num_batches=st.integers(1, 30),
        h2d=positive_floats,
        compute=positive_floats,
        d2h=positive_floats,
    )
    def test_overlap_at_least_bottleneck_stage(
        self, num_batches: int, h2d: float, compute: float, d2h: float
    ) -> None:
        stages = StageTimes(h2d, compute, d2h)
        bottleneck = num_batches * max(h2d, compute, d2h)
        assert double_buffered_roundtrip(num_batches, stages) >= bottleneck - 1e-12

    @given(num_batches=st.integers(1, 20), t=st.floats(0.1, 10))
    def test_more_buffers_never_hurt(self, num_batches: int, t: float) -> None:
        stages = StageTimes(t, t / 2, t)
        times = [
            double_buffered_roundtrip(num_batches, stages, buffers)
            for buffers in (1, 2, 3, 4)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))

    def test_single_batch_is_sum_of_stages(self) -> None:
        stages = StageTimes(2.0, 3.0, 4.0)
        assert double_buffered_roundtrip(1, stages) == 9.0
        assert serial_roundtrip(1, stages) == 9.0

    def test_transfer_dominated_pipeline(self) -> None:
        # With negligible compute, the makespan approaches one direction's
        # total plus the fill of the other - the Overlap version's ~50%
        # transfer-time saving (paper Fig. 13).
        stages = StageTimes(10.0, 0.0, 10.0)
        makespan = double_buffered_roundtrip(8, stages)
        assert makespan == pytest.approx(8 * 10.0 + 10.0)

    def test_exposure_subtracts_compute(self) -> None:
        stages = StageTimes(5.0, 1.0, 5.0)
        exposure = pipeline_transfer_exposure(4, stages)
        makespan = double_buffered_roundtrip(4, stages)
        assert exposure == pytest.approx(makespan - 4 * 1.0)

    def test_zero_batches(self) -> None:
        stages = StageTimes(1.0, 1.0, 1.0)
        assert double_buffered_roundtrip(0, stages) == 0.0
        assert serial_roundtrip(0, stages) == 0.0


class TestValidation:
    def test_negative_stage_rejected(self) -> None:
        with pytest.raises(SchedulingError):
            StageTimes(-1.0, 0.0, 0.0)

    def test_negative_batches_rejected(self) -> None:
        with pytest.raises(SchedulingError):
            serial_roundtrip(-1, StageTimes(1, 1, 1))
        with pytest.raises(SchedulingError):
            double_buffered_roundtrip(-1, StageTimes(1, 1, 1))

    def test_zero_buffers_rejected(self) -> None:
        with pytest.raises(SchedulingError):
            double_buffered_roundtrip(2, StageTimes(1, 1, 1), buffers=0)


class TestOverlapWindowArithmetic:
    """Hand-computed window arithmetic of the double-buffered discipline."""

    def test_single_buffer_degenerates_to_serial(self) -> None:
        # With one buffer half, batch k's H2D waits for batch k-1's D2H:
        # the overlap window closes completely and the pipeline serialises.
        stages = StageTimes(2.0, 3.0, 4.0)
        for batches in (1, 2, 5, 9):
            assert double_buffered_roundtrip(batches, stages, buffers=1) == (
                pytest.approx(serial_roundtrip(batches, stages))
            )

    def test_two_buffer_window_hand_computed(self) -> None:
        # stages (2, 3, 4), 3 batches, 2 buffers:
        #   k0: in 2,  comp 5,  out 9
        #   k1: in 4,  comp 8,  out 13
        #   k2: in waits out0=9 -> 11, comp 14, out 18
        assert double_buffered_roundtrip(3, StageTimes(2, 3, 4), 2) == pytest.approx(18.0)

    def test_third_buffer_widens_the_window(self) -> None:
        # Same schedule with 3 buffers: k2's H2D no longer waits for out0
        # (in 6, comp 11, out 17) - one extra buffer saves exactly the
        # exposed wait of the 2-buffer window.
        assert double_buffered_roundtrip(3, StageTimes(2, 3, 4), 3) == pytest.approx(17.0)

    def test_steady_state_is_periodic_in_buffer_count(self) -> None:
        # After pipeline fill the schedule repeats with period = buffer
        # count: every pair of extra batches costs the same 9.0 (the
        # per-batch increments alternate 4, 5 with buffer parity).
        stages = StageTimes(2.0, 3.0, 4.0)
        spans = [double_buffered_roundtrip(n, stages) for n in range(8, 14)]
        pair_costs = [b - a for a, b in zip(spans, spans[2:])]
        assert all(cost == pytest.approx(9.0) for cost in pair_costs)

    def test_window_never_exceeds_buffer_count(self) -> None:
        # A window of b buffers can hide at most (b-1) batches of D2H
        # behind H2D: growing buffers beyond the batch count changes
        # nothing.
        stages = StageTimes(5.0, 1.0, 5.0)
        unconstrained = double_buffered_roundtrip(4, stages, buffers=4)
        assert double_buffered_roundtrip(4, stages, buffers=9) == (
            pytest.approx(unconstrained)
        )

    def test_exposure_zero_when_compute_dominates(self) -> None:
        # A compute-bound pipeline hides all transfers except fill/drain.
        stages = StageTimes(1.0, 10.0, 1.0)
        exposure = pipeline_transfer_exposure(6, stages)
        assert exposure == pytest.approx(1.0 + 1.0)  # one fill + one drain
