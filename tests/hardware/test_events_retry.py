"""Tests for retryable tasks in the discrete-event timeline."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.hardware.events import EventTimeline


class TestRetryableTiming:
    def test_no_failures_matches_plain_add(self) -> None:
        plain = EventTimeline()
        plain.add("xfer", "h2d", 2.0)
        retry = EventTimeline()
        retry.add_retryable("xfer", "h2d", 2.0, fail_attempts=0)
        assert retry.run().makespan == plain.run().makespan == 2.0
        assert len(retry) == 1

    def test_failures_charge_duration_plus_backoff(self) -> None:
        timeline = EventTimeline()
        timeline.add_retryable(
            "xfer", "h2d", 2.0, fail_attempts=2,
            backoff_base=0.5, backoff_factor=2.0,
        )
        result = timeline.run()
        # 3 attempts x 2.0s on the link + backoffs 0.5 and 1.0.
        assert result.makespan == pytest.approx(3 * 2.0 + 0.5 + 1.0)
        assert result.busy["h2d"] == pytest.approx(6.0)

    def test_backoff_waits_do_not_occupy_the_link(self) -> None:
        timeline = EventTimeline()
        timeline.add_retryable(
            "xfer", "h2d", 1.0, fail_attempts=1, backoff_base=5.0
        )
        # Another transfer on the same link can slot in during the backoff.
        timeline.add("other", "h2d", 1.0)
        result = timeline.run()
        assert result.busy["h2d"] == pytest.approx(3.0)
        assert result.records["other"].start == pytest.approx(1.0)
        assert result.makespan == pytest.approx(1.0 + 5.0 + 1.0)

    def test_dependents_reference_the_plain_name(self) -> None:
        timeline = EventTimeline()
        timeline.add_retryable("xfer", "h2d", 1.0, fail_attempts=1, backoff_base=0.25)
        timeline.add("compute", "gpu", 1.0, deps=("xfer",))
        result = timeline.run()
        assert result.records["compute"].start == pytest.approx(
            result.records["xfer"].finish
        )
        assert result.makespan == pytest.approx(1.0 + 0.25 + 1.0 + 1.0)

    def test_deps_gate_the_first_attempt(self) -> None:
        timeline = EventTimeline()
        timeline.add("prep", "cpu", 1.5)
        timeline.add_retryable("xfer", "h2d", 1.0, deps=("prep",), fail_attempts=1)
        result = timeline.run()
        assert result.records["xfer@try0"].start == pytest.approx(1.5)


class TestRetryableValidation:
    def test_exhausted_budget_rejected(self) -> None:
        timeline = EventTimeline()
        with pytest.raises(SchedulingError, match="budgeted"):
            timeline.add_retryable("xfer", "h2d", 1.0, fail_attempts=4, max_attempts=4)

    def test_negative_fail_attempts_rejected(self) -> None:
        timeline = EventTimeline()
        with pytest.raises(SchedulingError, match="out of range"):
            timeline.add_retryable("xfer", "h2d", 1.0, fail_attempts=-1)

    def test_shrinking_backoff_rejected(self) -> None:
        timeline = EventTimeline()
        with pytest.raises(SchedulingError, match="backoff"):
            timeline.add_retryable("xfer", "h2d", 1.0, backoff_factor=0.5)

    def test_negative_backoff_rejected(self) -> None:
        timeline = EventTimeline()
        with pytest.raises(SchedulingError, match="backoff"):
            timeline.add_retryable("xfer", "h2d", 1.0, backoff_base=-1.0)
