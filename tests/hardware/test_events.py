"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.hardware.events import EventTimeline


class TestBasics:
    def test_single_task(self) -> None:
        timeline = EventTimeline()
        timeline.add("a", "gpu", 2.0)
        result = timeline.run()
        assert result.makespan == 2.0
        assert result.records["a"].start == 0.0

    def test_fifo_on_one_resource(self) -> None:
        timeline = EventTimeline()
        timeline.add("a", "gpu", 1.0)
        timeline.add("b", "gpu", 2.0)
        result = timeline.run()
        assert result.records["a"].finish == 1.0
        assert result.records["b"].start == 1.0
        assert result.makespan == 3.0

    def test_parallel_resources(self) -> None:
        timeline = EventTimeline()
        timeline.add("a", "gpu", 3.0)
        timeline.add("b", "link", 2.0)
        result = timeline.run()
        assert result.makespan == 3.0
        assert result.records["b"].start == 0.0

    def test_dependency_delays_start(self) -> None:
        timeline = EventTimeline()
        timeline.add("produce", "link", 2.0)
        timeline.add("consume", "gpu", 1.0, deps=("produce",))
        result = timeline.run()
        assert result.records["consume"].start == 2.0
        assert result.makespan == 3.0

    def test_later_ready_task_does_not_jump_earlier_one(self) -> None:
        # c becomes ready at t=3 (after a); d is ready at t=0 on the same
        # resource; d must run first even though c was submitted earlier.
        timeline = EventTimeline()
        timeline.add("a", "link", 3.0)
        timeline.add("c", "gpu", 1.0, deps=("a",))
        timeline.add("d", "gpu", 5.0)
        result = timeline.run()
        assert result.records["d"].start == 0.0
        assert result.records["c"].start == 5.0

    def test_zero_duration_chain_resolves(self) -> None:
        timeline = EventTimeline()
        timeline.add("a", "x", 0.0)
        timeline.add("b", "x", 0.0, deps=("a",))
        timeline.add("c", "x", 1.0, deps=("b",))
        result = timeline.run()
        assert result.makespan == 1.0

    def test_utilization(self) -> None:
        timeline = EventTimeline()
        timeline.add("a", "gpu", 1.0)
        timeline.add("b", "link", 4.0)
        result = timeline.run()
        assert result.utilization("gpu") == pytest.approx(0.25)
        assert result.utilization("link") == pytest.approx(1.0)
        assert result.utilization("unused") == 0.0


class TestValidation:
    def test_duplicate_name_rejected(self) -> None:
        timeline = EventTimeline()
        timeline.add("a", "gpu", 1.0)
        with pytest.raises(SchedulingError, match="duplicate"):
            timeline.add("a", "gpu", 1.0)

    def test_negative_duration_rejected(self) -> None:
        with pytest.raises(SchedulingError, match="negative"):
            EventTimeline().add("a", "gpu", -1.0)

    def test_unknown_dependency_rejected(self) -> None:
        timeline = EventTimeline()
        timeline.add("a", "gpu", 1.0, deps=("ghost",))
        with pytest.raises(SchedulingError, match="unknown task"):
            timeline.run()

    def test_cycle_detected(self) -> None:
        timeline = EventTimeline()
        timeline.add("a", "gpu", 1.0, deps=("b",))
        timeline.add("b", "gpu", 1.0, deps=("a",))
        with pytest.raises(SchedulingError, match="cycle"):
            timeline.run()


class TestInvariants:
    @given(seed=st.integers(0, 400))
    def test_no_resource_overlap_and_deps_respected(self, seed: int) -> None:
        import numpy as np

        rng = np.random.default_rng(seed)
        timeline = EventTimeline()
        names: list[str] = []
        for index in range(30):
            deps = tuple(
                names[i] for i in rng.choice(index, size=min(index, 2), replace=False)
            ) if index and rng.random() < 0.5 else ()
            name = f"t{index}"
            timeline.add(
                name,
                f"r{rng.integers(3)}",
                float(rng.uniform(0, 2)),
                deps,
            )
            names.append(name)
        result = timeline.run()
        # Dependencies respected.
        for name, record in result.records.items():
            for dep in record.task.deps:
                assert result.records[dep].finish <= record.start + 1e-12
        # No two tasks overlap on a resource.
        by_resource: dict[str, list] = {}
        for record in result.records.values():
            by_resource.setdefault(record.task.resource, []).append(record)
        for records in by_resource.values():
            records.sort(key=lambda r: r.start)
            for earlier, later in zip(records, records[1:]):
                assert earlier.finish <= later.start + 1e-12
        # Makespan is the max finish; busy sums match durations.
        assert result.makespan == pytest.approx(
            max(r.finish for r in result.records.values())
        )
        for resource, busy in result.busy.items():
            total = sum(
                r.task.duration
                for r in result.records.values()
                if r.task.resource == resource
            )
            assert busy == pytest.approx(total)
