"""Integration tests: every registered experiment runs and upholds the
paper's qualitative claims.

These use reduced problem sizes where the experiment accepts them, so the
unit suite stays fast; the benchmark harness runs the full-size versions.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ReproError
from repro.experiments import all_experiment_ids, run_experiment
from repro.experiments.base import ExperimentResult


EXPECTED_IDS = {
    "fig2", "fig3", "fig4", "fig6", "fig7", "fig9", "fig10", "fig11",
    "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig19",
    "tab2", "tab3", "fleet",
}


class TestRegistry:
    def test_all_paper_artifacts_registered(self) -> None:
        assert set(all_experiment_ids()) == EXPECTED_IDS

    def test_unknown_experiment_rejected(self) -> None:
        with pytest.raises(ReproError, match="unknown experiment"):
            run_experiment("fig99")

    @pytest.mark.parametrize("experiment_id", sorted(EXPECTED_IDS))
    def test_every_experiment_runs_and_renders(self, experiment_id: str) -> None:
        result = run_experiment(experiment_id)
        assert isinstance(result, ExperimentResult)
        assert result.rows
        rendered = result.render()
        assert experiment_id in rendered
        for row in result.rows:
            assert len(row) == len(result.headers)


class TestPaperClaims:
    def test_fig2_baseline_is_cpu_dominated(self) -> None:
        mean = run_experiment("fig2").data["average"]
        assert mean["cpu"] > 0.85  # paper: 88.89%
        assert mean["gpu"] < 0.05  # paper: 0.82%
        assert mean["transfer"] < 0.15  # paper: 10.29%

    def test_fig3_naive_never_improves(self) -> None:
        table = run_experiment("fig3").data["normalized"]
        for family, by_size in table.items():
            for size, ratio in by_size.items():
                assert ratio > 1.0, (family, size)

    def test_fig4_naive_is_transfer_dominated(self) -> None:
        mean = run_experiment("fig4").data["average"]
        assert mean["transfer"] > 0.8
        assert mean["cpu"] == pytest.approx(0.0)

    def test_tab2_involvement_ordering(self) -> None:
        measured = run_experiment("tab2").data["measured_pct"]
        assert max(measured, key=measured.get) == "iqp"
        assert measured["iqp"] > 80
        for family in ("qaoa", "qft", "qf", "hchain"):
            assert measured[family] < 15, family

    def test_fig7_state_fills_in(self) -> None:
        snapshots = run_experiment("fig7").data["snapshots"]
        fractions = [s.nonzero_fraction for s in snapshots]
        assert fractions[0] < 0.01
        assert fractions[-1] > 10 * fractions[0]

    def test_fig9_reordering_claims(self) -> None:
        summaries = run_experiment("fig9").data["summaries"]
        # Forward-looking delays involvement for gs and qft ...
        for family in ("gs", "qft"):
            original = summaries[(family, "original")][1]
            forward = summaries[(family, "forward_looking")][1]
            assert forward < 0.5 * original, family
        # ... but qaoa resists.
        original = summaries[("qaoa", "original")][1]
        forward = summaries[("qaoa", "forward_looking")][1]
        assert forward > 0.6 * original

    def test_fig10_qaoa_compressible_iqp_not(self) -> None:
        stats = run_experiment("fig10").data["stats"]
        qaoa_stats, _, qaoa_ratio = stats["qaoa"]
        iqp_stats, _, iqp_ratio = stats["iqp"]
        assert qaoa_stats.near_zero_fraction > iqp_stats.near_zero_fraction
        assert qaoa_ratio < iqp_ratio

    def test_fig12_version_stacking(self) -> None:
        averages = run_experiment("fig12").data["averages_at_largest"]
        assert averages["Naive"] > 1.0
        assert averages["Overlap"] < 1.0
        assert averages["Pruning"] < averages["Overlap"]
        assert averages["Reorder"] < averages["Pruning"]
        assert averages["Q-GPU"] < averages["Reorder"]
        # Paper-calibrated anchors: Overlap ~0.76, CPU-OpenMP ~0.42.
        assert averages["Overlap"] == pytest.approx(0.76, abs=0.06)
        assert averages["CPU-OpenMP"] == pytest.approx(0.42, abs=0.06)

    def test_fig13_overlap_halves_transfer_uniformly(self) -> None:
        table = run_experiment("fig13").data["normalized"]
        overlaps = [row["Overlap"] for row in table.values()]
        assert all(abs(value - 0.5) < 0.06 for value in overlaps)  # paper: 44.6%
        # Pruning savings are circuit-dependent: iqp far below qaoa.
        assert table["iqp"]["Pruning"] < 0.2 < table["qaoa"]["Pruning"]

    def test_fig14_codec_overhead_small_vs_savings(self) -> None:
        average = run_experiment("fig14").data["average_pct"]
        assert 0 < average < 35  # small against the 3-10x savings

    def test_fig15_memory_bound_and_baseline_collapse(self) -> None:
        points = run_experiment("fig15").data["points"]
        assert all(p.memory_bound for p in points.values())
        collapse = points[("qft", 33, "Baseline")].achieved_flops
        resident = points[("qft", 29, "Baseline")].achieved_flops
        assert collapse < 0.05 * resident
        assert points[("qft", 33, "Q-GPU")].achieved_flops > collapse

    def test_fig16_qgpu_wins(self) -> None:
        averages = run_experiment("fig16").data["averages"]
        assert averages["Qsim-Cirq"] > 2.0  # paper: 2.02x
        assert averages["QDK"] > 10.0  # paper: 10.82x
        assert averages["QDK"] > averages["Qsim-Cirq"]

    def test_fig17_v100_gains_exceed_a100(self) -> None:
        reductions = run_experiment("fig17").data["average_reduction"]
        assert reductions["V100"] > reductions["A100"] > 0

    def test_fig19_multigpu_speedup(self) -> None:
        averages = run_experiment("fig19").data["averages"]
        for value in averages.values():
            assert value < 0.5  # paper: ~0.335 (2.97-2.98x)

    def test_tab3_deep_circuit_reductions(self) -> None:
        reductions = run_experiment("tab3").data["reductions"]
        assert reductions["grqc_32"] == pytest.approx(41.47, abs=8)
        assert reductions["rqc_31"] == pytest.approx(17.99, abs=8)
        assert reductions["rqc_32"] == pytest.approx(17.39, abs=8)
