"""Tests for the matrix-product-state engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import FAMILIES, get_circuit
from repro.circuits.library.extensions import ghz
from repro.errors import SimulationError
from repro.mps import MpsState, simulate_mps
from repro.statevector.state import simulate


class TestExactness:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_untruncated_equals_dense(self, family: str) -> None:
        circuit = get_circuit(family, 8)
        np.testing.assert_allclose(
            simulate_mps(circuit).to_dense(),
            simulate(circuit).amplitudes,
            atol=1e-9,
        )

    @given(seed=st.integers(0, 60))
    def test_random_circuits_exact(self, seed: int) -> None:
        rng = np.random.default_rng(seed)
        circuit = QuantumCircuit(5)
        for _ in range(25):
            kind = rng.integers(0, 4)
            if kind == 0:
                circuit.h(int(rng.integers(5)))
            elif kind == 1:
                circuit.rz(float(rng.uniform(-3, 3)), int(rng.integers(5)))
            elif kind == 2:
                a, b = rng.choice(5, size=2, replace=False)
                circuit.cx(int(a), int(b))
            else:
                a, b = rng.choice(5, size=2, replace=False)
                circuit.cp(0.7, int(a), int(b))
        np.testing.assert_allclose(
            simulate_mps(circuit).to_dense(),
            simulate(circuit).amplitudes,
            atol=1e-9,
        )

    def test_three_qubit_gates_via_decomposition(self) -> None:
        circuit = QuantumCircuit(4).h(0).h(1).ccx(0, 1, 3).ccz(1, 2, 3)
        np.testing.assert_allclose(
            simulate_mps(circuit).to_dense(),
            simulate(circuit).amplitudes,
            atol=1e-9,
        )

    def test_amplitude_equation9(self) -> None:
        circuit = get_circuit("qaoa", 6)
        state = simulate_mps(circuit)
        dense = simulate(circuit).amplitudes
        for index in (0, 1, 17, 63):
            assert state.amplitude(index) == pytest.approx(dense[index], abs=1e-10)

    def test_norm_is_one(self) -> None:
        state = simulate_mps(get_circuit("rqc", 8))
        assert state.norm() == pytest.approx(1.0, abs=1e-9)


class TestBondDimensions:
    def test_product_states_have_bond_one(self) -> None:
        # QFT of |0...0> is a product state; exact MPS discovers this.
        assert simulate_mps(get_circuit("qft", 8)).max_bond_dimension() == 1

    def test_ghz_needs_bond_two(self) -> None:
        state = simulate_mps(ghz(8))
        assert state.max_bond_dimension() == 2

    def test_entangling_circuits_grow_bonds(self) -> None:
        shallow = simulate_mps(get_circuit("rqc", 10, depth=2)).max_bond_dimension()
        deep = simulate_mps(get_circuit("rqc", 10, depth=10)).max_bond_dimension()
        assert deep >= shallow

    def test_compression_to_n_d_squared(self) -> None:
        # The paper's Equation 9 point: an MPS stores O(n d^2) numbers.
        state = simulate_mps(ghz(12))
        stored = sum(t.size for t in state.tensors)
        assert stored < 200  # vs 4096 dense amplitudes


class TestTruncation:
    def test_low_entanglement_survives_truncation(self) -> None:
        circuit = ghz(10)
        truncated = simulate_mps(circuit, max_bond=2)
        fidelity = abs(np.vdot(truncated.to_dense(), simulate(circuit).amplitudes)) ** 2
        assert fidelity == pytest.approx(1.0, abs=1e-9)
        assert truncated.truncation_error == pytest.approx(0.0, abs=1e-12)

    def test_high_entanglement_truncation_tracked(self) -> None:
        circuit = get_circuit("rqc", 10, depth=8)
        truncated = simulate_mps(circuit, max_bond=2)
        assert truncated.truncation_error > 1e-6
        assert truncated.max_bond_dimension() <= 2

    def test_wider_bond_never_worse(self) -> None:
        circuit = get_circuit("qaoa", 8)
        dense = simulate(circuit).amplitudes
        fidelities = []
        for bond in (1, 2, 4, 8):
            approx = simulate_mps(circuit, max_bond=bond).to_dense()
            approx = approx / np.linalg.norm(approx)
            fidelities.append(abs(np.vdot(approx, dense)) ** 2)
        assert all(a <= b + 1e-9 for a, b in zip(fidelities, fidelities[1:]))


class TestSampling:
    def test_ghz_samples_only_two_outcomes(self) -> None:
        rng = np.random.default_rng(0)
        counts = simulate_mps(ghz(10)).sample(300, rng)
        assert set(counts) == {0, (1 << 10) - 1}
        assert abs(counts[0] - 150) < 60

    def test_distribution_matches_dense(self) -> None:
        rng = np.random.default_rng(1)
        circuit = get_circuit("qaoa", 7)
        counts = simulate_mps(circuit).sample(8000, rng)
        dense = np.abs(simulate(circuit).amplitudes) ** 2
        empirical = np.zeros(128)
        for outcome, count in counts.items():
            empirical[outcome] = count / 8000
        assert 0.5 * np.abs(empirical - dense).sum() < 0.12  # TV distance

    def test_basis_state_sampling_deterministic(self) -> None:
        circuit = QuantumCircuit(5).x(1).x(4)
        counts = simulate_mps(circuit).sample(50)
        assert counts == {0b10010: 50}

    def test_shots_validation(self) -> None:
        with pytest.raises(SimulationError):
            simulate_mps(ghz(4)).sample(0)

    def test_sampling_respects_conditionals_on_entangled_chain(self) -> None:
        # Each sampled outcome of gs must be in the dense support.
        rng = np.random.default_rng(2)
        circuit = get_circuit("gs", 8)
        support = set(np.nonzero(np.abs(simulate(circuit).amplitudes) > 1e-12)[0])
        counts = simulate_mps(circuit).sample(200, rng)
        assert set(counts) <= support


class TestValidation:
    def test_bad_parameters(self) -> None:
        with pytest.raises(SimulationError):
            MpsState(0)
        with pytest.raises(SimulationError):
            MpsState(2, max_bond=0)

    def test_width_mismatch(self) -> None:
        with pytest.raises(SimulationError):
            MpsState(2).run(QuantumCircuit(3).h(0))

    def test_gate_out_of_range(self) -> None:
        with pytest.raises(SimulationError):
            MpsState(2).apply(QuantumCircuit(3).h(2)[0])

    def test_amplitude_bounds(self) -> None:
        with pytest.raises(SimulationError):
            MpsState(2).amplitude(4)
