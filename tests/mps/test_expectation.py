"""Tests for MPS Pauli expectations (transfer-matrix contraction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.library import FAMILIES, get_circuit
from repro.errors import SimulationError
from repro.mps import simulate_mps
from repro.statevector.expectation import PauliString, expectation_pauli
from repro.statevector.state import simulate


class TestMpsExpectations:
    @pytest.mark.parametrize("family", ["qaoa", "gs", "hchain", "rqc"])
    @pytest.mark.parametrize("text", ["Z0", "Z0 Z5", "X2", "X0 Y3 Z7"])
    def test_matches_dense(self, family: str, text: str) -> None:
        circuit = get_circuit(family, 10)
        dense = simulate(circuit).amplitudes
        mps = simulate_mps(circuit)
        string = PauliString.parse(text)
        assert mps.expectation_pauli(dict(string.paulis)) == pytest.approx(
            expectation_pauli(dense, string), abs=1e-9
        )

    def test_identity_observable_is_norm_squared(self) -> None:
        state = simulate_mps(get_circuit("gs", 8))
        assert state.expectation_pauli({}) == pytest.approx(1.0, abs=1e-9)

    def test_ghz_correlations(self) -> None:
        from repro.circuits.library.extensions import ghz

        state = simulate_mps(ghz(12))
        assert state.expectation_pauli({0: "Z", 11: "Z"}) == pytest.approx(1.0)
        assert state.expectation_pauli({0: "Z"}) == pytest.approx(0.0, abs=1e-10)

    def test_no_densification_needed_at_width_30(self) -> None:
        # A 30-qubit GHZ is far beyond dense reach but trivial for MPS.
        from repro.circuits.library.extensions import ghz

        state = simulate_mps(ghz(30))
        assert state.expectation_pauli({0: "Z", 29: "Z"}) == pytest.approx(1.0)

    def test_validation(self) -> None:
        state = simulate_mps(get_circuit("gs", 6))
        with pytest.raises(SimulationError):
            state.expectation_pauli({0: "Q"})
        with pytest.raises(SimulationError):
            state.expectation_pauli({9: "Z"})
